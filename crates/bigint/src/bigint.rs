//! Signed arbitrary-precision integers: a sign-and-magnitude wrapper over
//! [`BigUint`].

use crate::{BigUint, ParseBigIntError};
use core::cmp::Ordering;
use core::fmt;
use core::ops::{Add, Div, Mul, Neg, Rem, Sub};

/// Sign of a [`BigInt`]. Zero always carries [`Sign::Zero`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Sign {
    Negative,
    Zero,
    Positive,
}

/// An arbitrary-precision signed integer.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigInt {
    sign: Sign,
    mag: BigUint,
}

impl BigInt {
    /// The value `0`.
    pub fn zero() -> Self {
        BigInt {
            sign: Sign::Zero,
            mag: BigUint::zero(),
        }
    }

    /// The value `1`.
    pub fn one() -> Self {
        BigInt {
            sign: Sign::Positive,
            mag: BigUint::one(),
        }
    }

    /// Construct from a sign and magnitude (sign is normalized for zero).
    pub fn from_sign_mag(sign: Sign, mag: BigUint) -> Self {
        if mag.is_zero() {
            BigInt::zero()
        } else {
            let sign = if sign == Sign::Zero {
                Sign::Positive
            } else {
                sign
            };
            BigInt { sign, mag }
        }
    }

    /// The sign.
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// The magnitude.
    pub fn magnitude(&self) -> &BigUint {
        &self.mag
    }

    /// True iff zero.
    pub fn is_zero(&self) -> bool {
        self.sign == Sign::Zero
    }

    /// True iff strictly negative.
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Negative
    }

    /// Parse in the given radix; an optional leading `-` or `+` is accepted.
    pub fn from_str_radix(s: &str, radix: u32) -> Result<Self, ParseBigIntError> {
        let (sign, digits) = match s.strip_prefix('-') {
            Some(rest) => (Sign::Negative, rest),
            None => (Sign::Positive, s.strip_prefix('+').unwrap_or(s)),
        };
        let mag = BigUint::from_str_radix(digits, radix)?;
        Ok(BigInt::from_sign_mag(sign, mag))
    }

    /// Format in the given radix with a leading `-` when negative.
    pub fn to_str_radix(&self, radix: u32) -> String {
        match self.sign {
            Sign::Negative => format!("-{}", self.mag.to_str_radix(radix)),
            _ => self.mag.to_str_radix(radix),
        }
    }

    /// Lossy conversion to `f64`.
    pub fn to_f64(&self) -> f64 {
        let m = self.mag.to_f64();
        if self.sign == Sign::Negative {
            -m
        } else {
            m
        }
    }

    /// Returns the value as `i64` if it fits.
    pub fn to_i64(&self) -> Option<i64> {
        let m = self.mag.to_u64()?;
        match self.sign {
            Sign::Zero => Some(0),
            Sign::Positive => i64::try_from(m).ok(),
            Sign::Negative => {
                if m == i64::MIN.unsigned_abs() {
                    Some(i64::MIN)
                } else {
                    i64::try_from(m).ok().map(|v| -v)
                }
            }
        }
    }

    /// Absolute value.
    pub fn abs(&self) -> Self {
        BigInt::from_sign_mag(Sign::Positive, self.mag.clone())
    }

    /// Truncated division with remainder: `self = q*rhs + r`, `|r| < |rhs|`,
    /// `r` takes the sign of `self` (like Rust's `/` and `%` on integers).
    pub fn div_rem(&self, rhs: &Self) -> (Self, Self) {
        let (q, r) = self.mag.div_rem(&rhs.mag);
        let q_sign = if self.sign == rhs.sign {
            Sign::Positive
        } else {
            Sign::Negative
        };
        (
            BigInt::from_sign_mag(q_sign, q),
            BigInt::from_sign_mag(self.sign, r),
        )
    }

    /// Floor square root of a non-negative value.
    ///
    /// # Panics
    /// Panics if the value is negative.
    pub fn sqrt(&self) -> Self {
        assert!(!self.is_negative(), "sqrt of negative BigInt");
        BigInt::from_sign_mag(Sign::Positive, self.mag.sqrt())
    }

    /// Miller–Rabin probable-prime test on the absolute value; negative
    /// numbers and 0/1 are not prime.
    pub fn is_probable_prime(&self) -> bool {
        self.sign == Sign::Positive && self.mag.is_probable_prime()
    }

    /// The next probable prime strictly greater than `self`.
    pub fn next_probable_prime(&self) -> Self {
        let mag = if self.sign == Sign::Positive {
            self.mag.next_probable_prime()
        } else {
            BigUint::from(2u64)
        };
        BigInt::from_sign_mag(Sign::Positive, mag)
    }

    /// `self^exp mod m` on the magnitudes of non-negative operands.
    ///
    /// # Panics
    /// Panics if any operand is negative or `m` is zero.
    pub fn modpow(&self, exp: &Self, m: &Self) -> Self {
        assert!(
            !self.is_negative() && !exp.is_negative() && !m.is_negative(),
            "modpow requires non-negative operands"
        );
        BigInt::from_sign_mag(Sign::Positive, self.mag.modpow(&exp.mag, &m.mag))
    }
}

impl From<i64> for BigInt {
    fn from(v: i64) -> Self {
        match v.cmp(&0) {
            Ordering::Equal => BigInt::zero(),
            Ordering::Greater => BigInt::from_sign_mag(Sign::Positive, BigUint::from(v as u64)),
            Ordering::Less => {
                BigInt::from_sign_mag(Sign::Negative, BigUint::from(v.unsigned_abs()))
            }
        }
    }
}

impl From<u64> for BigInt {
    fn from(v: u64) -> Self {
        BigInt::from_sign_mag(Sign::Positive, BigUint::from(v))
    }
}

impl From<BigUint> for BigInt {
    fn from(mag: BigUint) -> Self {
        BigInt::from_sign_mag(Sign::Positive, mag)
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        fn rank(s: Sign) -> i8 {
            match s {
                Sign::Negative => -1,
                Sign::Zero => 0,
                Sign::Positive => 1,
            }
        }
        match rank(self.sign).cmp(&rank(other.sign)) {
            Ordering::Equal => match self.sign {
                Sign::Negative => other.mag.cmp_mag(&self.mag),
                _ => self.mag.cmp_mag(&other.mag),
            },
            ord => ord,
        }
    }
}

impl Neg for BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        let sign = match self.sign {
            Sign::Negative => Sign::Positive,
            Sign::Zero => Sign::Zero,
            Sign::Positive => Sign::Negative,
        };
        BigInt {
            sign,
            mag: self.mag,
        }
    }
}

impl Add for &BigInt {
    type Output = BigInt;
    fn add(self, rhs: &BigInt) -> BigInt {
        match (self.sign, rhs.sign) {
            (Sign::Zero, _) => rhs.clone(),
            (_, Sign::Zero) => self.clone(),
            (a, b) if a == b => BigInt::from_sign_mag(a, self.mag.add_ref(&rhs.mag)),
            _ => match self.mag.cmp_mag(&rhs.mag) {
                Ordering::Equal => BigInt::zero(),
                Ordering::Greater => BigInt::from_sign_mag(
                    self.sign,
                    self.mag.checked_sub_ref(&rhs.mag).expect("checked by cmp"),
                ),
                Ordering::Less => BigInt::from_sign_mag(
                    rhs.sign,
                    rhs.mag.checked_sub_ref(&self.mag).expect("checked by cmp"),
                ),
            },
        }
    }
}

impl Sub for &BigInt {
    type Output = BigInt;
    fn sub(self, rhs: &BigInt) -> BigInt {
        self + &(-rhs.clone())
    }
}

impl Mul for &BigInt {
    type Output = BigInt;
    fn mul(self, rhs: &BigInt) -> BigInt {
        let sign = match (self.sign, rhs.sign) {
            (Sign::Zero, _) | (_, Sign::Zero) => Sign::Zero,
            (a, b) if a == b => Sign::Positive,
            _ => Sign::Negative,
        };
        BigInt::from_sign_mag(sign, self.mag.mul_ref(&rhs.mag))
    }
}

impl Div for &BigInt {
    type Output = BigInt;
    fn div(self, rhs: &BigInt) -> BigInt {
        self.div_rem(rhs).0
    }
}

impl Rem for &BigInt {
    type Output = BigInt;
    fn rem(self, rhs: &BigInt) -> BigInt {
        self.div_rem(rhs).1
    }
}

macro_rules! forward_owned_binop {
    ($($trait:ident :: $method:ident),*) => {$(
        impl $trait for BigInt {
            type Output = BigInt;
            fn $method(self, rhs: BigInt) -> BigInt {
                $trait::$method(&self, &rhs)
            }
        }
    )*};
}
forward_owned_binop!(Add::add, Sub::sub, Mul::mul, Div::div, Rem::rem);

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigInt({})", self)
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_str_radix(10))
    }
}

impl std::str::FromStr for BigInt {
    type Err = ParseBigIntError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        BigInt::from_str_radix(s, 10)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(v: i64) -> BigInt {
        BigInt::from(v)
    }

    #[test]
    fn signed_addition_all_sign_combinations() {
        for (x, y) in [
            (5i64, 3i64),
            (5, -3),
            (-5, 3),
            (-5, -3),
            (3, -5),
            (-3, 5),
            (0, 7),
            (7, 0),
            (5, -5),
        ] {
            assert_eq!((&b(x) + &b(y)).to_i64(), Some(x + y), "{x} + {y}");
        }
    }

    #[test]
    fn signed_subtraction_and_negation() {
        for (x, y) in [(5i64, 3i64), (3, 5), (-4, -9), (0, 6), (6, 0)] {
            assert_eq!((&b(x) - &b(y)).to_i64(), Some(x - y), "{x} - {y}");
        }
        assert_eq!((-b(7)).to_i64(), Some(-7));
        assert_eq!((-b(0)).to_i64(), Some(0));
    }

    #[test]
    fn signed_multiplication() {
        for (x, y) in [(6i64, 7i64), (-6, 7), (6, -7), (-6, -7), (0, 9), (9, 0)] {
            assert_eq!((&b(x) * &b(y)).to_i64(), Some(x * y), "{x} * {y}");
        }
    }

    #[test]
    fn truncated_division_matches_rust() {
        for (x, y) in [(7i64, 2i64), (-7, 2), (7, -2), (-7, -2), (9, 3), (-9, 3)] {
            let (q, r) = b(x).div_rem(&b(y));
            assert_eq!(q.to_i64(), Some(x / y), "{x} / {y}");
            assert_eq!(r.to_i64(), Some(x % y), "{x} % {y}");
        }
    }

    #[test]
    fn ordering_across_signs() {
        assert!(b(-10) < b(-9));
        assert!(b(-1) < b(0));
        assert!(b(0) < b(1));
        assert!(b(9) < b(10));
        assert_eq!(b(4).cmp(&b(4)), Ordering::Equal);
    }

    #[test]
    fn parse_and_format_negative() {
        let n = BigInt::from_str_radix("-hello", 36).unwrap();
        assert_eq!(n.to_i64(), Some(-29234652));
        assert_eq!(n.to_str_radix(36), "-hello");
        assert_eq!(
            BigInt::from_str_radix("+42", 10).unwrap().to_i64(),
            Some(42)
        );
    }

    #[test]
    fn i64_boundaries_roundtrip() {
        assert_eq!(b(i64::MAX).to_i64(), Some(i64::MAX));
        assert_eq!(b(i64::MIN).to_i64(), Some(i64::MIN));
        let too_big = &b(i64::MAX) + &BigInt::one();
        assert_eq!(too_big.to_i64(), None);
    }

    #[test]
    fn prime_helpers_respect_sign() {
        assert!(b(13).is_probable_prime());
        assert!(!b(-13).is_probable_prime());
        assert_eq!(b(-100).next_probable_prime().to_i64(), Some(2));
    }

    #[test]
    fn to_f64_signed() {
        assert_eq!(b(-250).to_f64(), -250.0);
        assert_eq!(b(0).to_f64(), 0.0);
    }
}
