//! Integer square root.
//!
//! The paper's `hashNumber` takes `Math.sqrt` of the parsed word (Fig. 3);
//! the heavyweight hash variants additionally work on exact integer roots,
//! so both an exact integer Newton iteration and the `f64` path are provided.

use crate::BigUint;

impl BigUint {
    /// Floor of the square root, computed by Newton's method on integers.
    ///
    /// For all `n`: `sqrt(n)^2 <= n < (sqrt(n)+1)^2`.
    pub fn sqrt(&self) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        if let Some(v) = self.to_u64() {
            return BigUint::from(u64_isqrt(v));
        }
        // Initial guess: 2^ceil(bits/2), guaranteed >= sqrt(n).
        let mut x = BigUint::one().shl_bits(self.bits().div_ceil(2));
        loop {
            // x' = (x + n/x) / 2; the sequence is strictly decreasing until
            // it reaches floor(sqrt(n)).
            let mut next = x.add_ref(&self.div_rem(&x).0);
            next.div_rem_small(2);
            if next.cmp_mag(&x) != core::cmp::Ordering::Less {
                return x;
            }
            x = next;
        }
    }

    /// True iff the value is a perfect square.
    pub fn is_perfect_square(&self) -> bool {
        let r = self.sqrt();
        r.mul_ref(&r) == *self
    }
}

fn u64_isqrt(v: u64) -> u64 {
    if v == 0 {
        return 0;
    }
    let mut x = (v as f64).sqrt() as u64;
    // Correct the float estimate by at most one step in either direction.
    while x.checked_mul(x).is_none_or(|sq| sq > v) {
        x -= 1;
    }
    while (x + 1).checked_mul(x + 1).is_some_and(|sq| sq <= v) {
        x += 1;
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sqrt_small_values() {
        for (n, r) in [
            (0u64, 0u64),
            (1, 1),
            (2, 1),
            (3, 1),
            (4, 2),
            (8, 2),
            (9, 3),
            (15, 3),
            (16, 4),
        ] {
            assert_eq!(BigUint::from(n).sqrt(), BigUint::from(r), "sqrt({n})");
        }
    }

    #[test]
    fn sqrt_near_u64_boundary() {
        let v = u64::MAX;
        let r = BigUint::from(v).sqrt();
        let r2 = r.mul_ref(&r);
        assert!(r2 <= BigUint::from(v));
        let r1 = r.add_ref(&BigUint::one());
        assert!(r1.mul_ref(&r1) > BigUint::from(v));
    }

    #[test]
    fn sqrt_large_perfect_square() {
        let root = BigUint::from_str_radix("123456789123456789123456789", 10).unwrap();
        let square = root.mul_ref(&root);
        assert_eq!(square.sqrt(), root);
        assert!(square.is_perfect_square());
        assert!(!square.add_ref(&BigUint::one()).is_perfect_square());
    }

    #[test]
    fn sqrt_large_non_square_brackets() {
        let n = BigUint::from_str_radix("98765432109876543210987654321098765432109", 10).unwrap();
        let r = n.sqrt();
        assert!(r.mul_ref(&r) <= n);
        let r1 = r.add_ref(&BigUint::one());
        assert!(r1.mul_ref(&r1) > n);
    }

    #[test]
    fn u64_isqrt_exhaustive_corners() {
        for v in [
            0u64,
            1,
            2,
            3,
            4,
            24,
            25,
            26,
            u32::MAX as u64,
            (u32::MAX as u64).pow(2),
        ] {
            let r = u64_isqrt(v);
            assert!(r * r <= v);
            assert!((r + 1).checked_mul(r + 1).is_none_or(|sq| sq > v));
        }
    }
}
