//! Primality testing and prime search.
//!
//! The heavyweight benchmark variant (Sec. VII) inflates the per-word work
//! using "trigonometry and prime number functions of Java's Math and
//! BigInteger libraries"; `isProbablePrime`/`nextProbablePrime` are the
//! `BigInteger` prime functions, reproduced here with deterministic
//! Miller–Rabin for 64-bit inputs and fixed-base Miller–Rabin beyond.

use crate::BigUint;

/// Small primes used for cheap trial division before Miller–Rabin.
const SMALL_PRIMES: [u64; 25] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
];

/// Miller–Rabin witnesses that make the test deterministic for n < 3.3e24.
const MR_BASES: [u64; 13] = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41];

impl BigUint {
    /// Miller–Rabin probabilistic primality test.
    ///
    /// Deterministic for values below 3.3 * 10^24 (the 13 fixed witnesses
    /// cover that range); for larger values the error probability is at most
    /// 4^-13 per composite. This mirrors `BigInteger.isProbablePrime` with a
    /// generous certainty parameter.
    pub fn is_probable_prime(&self) -> bool {
        if let Some(v) = self.to_u64() {
            if v < 2 {
                return false;
            }
        }
        for &p in &SMALL_PRIMES {
            let pb = BigUint::from(p);
            if *self == pb {
                return true;
            }
            if self.div_rem(&pb).1.is_zero() {
                return false;
            }
        }
        // self is odd and > 97 here. Write self-1 = d * 2^s with d odd.
        let one = BigUint::one();
        let n_minus_1 = self.checked_sub_ref(&one).expect("self > 1");
        let s = trailing_zeros(&n_minus_1);
        let d = n_minus_1.shr_bits(s);
        'witness: for &a in &MR_BASES {
            let a = BigUint::from(a);
            let mut x = a.modpow(&d, self);
            if x.is_one() || x == n_minus_1 {
                continue;
            }
            for _ in 1..s {
                x = x.mul_ref(&x).div_rem(self).1;
                if x == n_minus_1 {
                    continue 'witness;
                }
            }
            return false;
        }
        true
    }

    /// The smallest probable prime strictly greater than `self`
    /// (`BigInteger.nextProbablePrime` semantics).
    pub fn next_probable_prime(&self) -> BigUint {
        let two = BigUint::from(2u64);
        if self.cmp_mag(&two) == core::cmp::Ordering::Less {
            return two;
        }
        // Start at the next odd number above self.
        let mut candidate = self.add_ref(&BigUint::one());
        if candidate.is_even() {
            candidate = candidate.add_ref(&BigUint::one());
        }
        loop {
            if candidate.is_probable_prime() {
                return candidate;
            }
            candidate = candidate.add_ref(&two);
        }
    }

    /// Count of probable primes in `[2, self]` by sieve-free iteration.
    ///
    /// Intended for tests and small ranges only (linear in the range).
    pub fn count_primes_to(&self) -> u64 {
        let mut count = 0;
        let mut p = BigUint::one();
        loop {
            p = p.next_probable_prime();
            if p.cmp_mag(self) == core::cmp::Ordering::Greater {
                return count;
            }
            count += 1;
        }
    }
}

fn trailing_zeros(n: &BigUint) -> u64 {
    debug_assert!(!n.is_zero());
    let mut tz = 0u64;
    for &l in n.limbs() {
        if l == 0 {
            tz += 64;
        } else {
            return tz + l.trailing_zeros() as u64;
        }
    }
    tz
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_prime_naive(n: u64) -> bool {
        if n < 2 {
            return false;
        }
        let mut d = 2;
        while d * d <= n {
            if n.is_multiple_of(d) {
                return false;
            }
            d += 1;
        }
        true
    }

    #[test]
    fn agrees_with_naive_up_to_2000() {
        for n in 0u64..2000 {
            assert_eq!(
                BigUint::from(n).is_probable_prime(),
                is_prime_naive(n),
                "disagreement at {n}"
            );
        }
    }

    #[test]
    fn known_large_primes() {
        // 2^61 - 1 is a Mersenne prime.
        let m61 = BigUint::from((1u64 << 61) - 1);
        assert!(m61.is_probable_prime());
        // 2^89 - 1 is a Mersenne prime (multi-limb).
        let m89 = BigUint::one()
            .shl_bits(89)
            .checked_sub_ref(&BigUint::one())
            .unwrap();
        assert!(m89.is_probable_prime());
        // 2^67 - 1 is famously composite (193707721 * 761838257287).
        let m67 = BigUint::one()
            .shl_bits(67)
            .checked_sub_ref(&BigUint::one())
            .unwrap();
        assert!(!m67.is_probable_prime());
    }

    #[test]
    fn carmichael_numbers_are_composite() {
        // Carmichael numbers fool Fermat tests but not Miller-Rabin.
        for n in [
            561u64, 1105, 1729, 2465, 2821, 6601, 8911, 10585, 15841, 29341,
        ] {
            assert!(!BigUint::from(n).is_probable_prime(), "{n} is Carmichael");
        }
    }

    #[test]
    fn next_probable_prime_sequence() {
        let mut p = BigUint::zero();
        let expected = [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29];
        for &e in &expected {
            p = p.next_probable_prime();
            assert_eq!(p.to_u64(), Some(e));
        }
    }

    #[test]
    fn next_probable_prime_skips_composite_run() {
        // 113 is prime; the next prime after 114..126 is 127.
        assert_eq!(
            BigUint::from(114u64).next_probable_prime().to_u64(),
            Some(127)
        );
        // From a prime, returns the NEXT prime (strictly greater).
        assert_eq!(BigUint::from(7u64).next_probable_prime().to_u64(), Some(11));
    }

    #[test]
    fn prime_counting_small() {
        // pi(100) = 25.
        assert_eq!(BigUint::from(100u64).count_primes_to(), 25);
    }

    #[test]
    fn trailing_zeros_multi_limb() {
        let n = BigUint::one().shl_bits(130);
        assert_eq!(super::trailing_zeros(&n), 130);
        assert_eq!(super::trailing_zeros(&BigUint::from(12u64)), 2);
    }
}
