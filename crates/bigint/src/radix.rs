//! Radix parsing and formatting for bases 2–36.
//!
//! Base 36 is the one the paper's benchmark leans on: `wordToNumber` parses
//! each word with `new BigInteger(word, 36)` (Fig. 3).

use crate::BigUint;
use core::fmt;

/// Error returned when a string cannot be parsed as a big integer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseBigIntError {
    /// The input was empty (or only a sign).
    Empty,
    /// A character was not a digit in the requested radix.
    InvalidDigit { ch: char, radix: u32 },
}

impl fmt::Display for ParseBigIntError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseBigIntError::Empty => write!(f, "empty integer literal"),
            ParseBigIntError::InvalidDigit { ch, radix } => {
                write!(f, "invalid digit {ch:?} for radix {radix}")
            }
        }
    }
}

impl std::error::Error for ParseBigIntError {}

fn digit_value(ch: char, radix: u32) -> Result<u64, ParseBigIntError> {
    let v = match ch {
        '0'..='9' => ch as u32 - '0' as u32,
        'a'..='z' => ch as u32 - 'a' as u32 + 10,
        'A'..='Z' => ch as u32 - 'A' as u32 + 10,
        _ => return Err(ParseBigIntError::InvalidDigit { ch, radix }),
    };
    if v >= radix {
        return Err(ParseBigIntError::InvalidDigit { ch, radix });
    }
    Ok(v as u64)
}

impl BigUint {
    /// Parse `s` as an unsigned integer in the given radix (2–36).
    ///
    /// Both upper- and lower-case digits are accepted, as in
    /// `java.math.BigInteger`.
    ///
    /// # Panics
    /// Panics if `radix` is outside `2..=36`.
    pub fn from_str_radix(s: &str, radix: u32) -> Result<Self, ParseBigIntError> {
        assert!((2..=36).contains(&radix), "radix must be in 2..=36");
        if s.is_empty() {
            return Err(ParseBigIntError::Empty);
        }
        let mut out = BigUint::zero();
        for ch in s.chars() {
            let d = digit_value(ch, radix)?;
            out.mul_add_small(radix as u64, d);
        }
        Ok(out)
    }

    /// Format as lower-case digits in the given radix (2–36).
    ///
    /// # Panics
    /// Panics if `radix` is outside `2..=36`.
    pub fn to_str_radix(&self, radix: u32) -> String {
        assert!((2..=36).contains(&radix), "radix must be in 2..=36");
        if self.is_zero() {
            return "0".to_string();
        }
        const DIGITS: &[u8; 36] = b"0123456789abcdefghijklmnopqrstuvwxyz";
        let mut n = self.clone();
        let mut out = Vec::new();
        // Peel several digits per division by using the largest power of the
        // radix that fits in a limb.
        let mut chunk = radix as u64;
        let mut digits_per_chunk = 1u32;
        while let Some(next) = chunk.checked_mul(radix as u64) {
            chunk = next;
            digits_per_chunk += 1;
        }
        while !n.is_zero() {
            let mut rem = n.div_rem_small(chunk);
            let limit = if n.is_zero() { 1 } else { digits_per_chunk };
            let mut produced = 0;
            while rem > 0 || produced < limit {
                out.push(DIGITS[(rem % radix as u64) as usize]);
                rem /= radix as u64;
                produced += 1;
            }
        }
        while out.last() == Some(&b'0') && out.len() > 1 {
            out.pop();
        }
        out.reverse();
        String::from_utf8(out).expect("radix digits are ASCII")
    }
}

impl std::str::FromStr for BigUint {
    type Err = ParseBigIntError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        BigUint::from_str_radix(s, 10)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_base_10() {
        let n = BigUint::from_str_radix("18446744073709551616", 10).unwrap();
        assert_eq!(n.limbs(), &[0, 1]);
    }

    #[test]
    fn parse_base_36_word() {
        // "hello" in base 36 = 29234652 (matches java.math.BigInteger).
        let n = BigUint::from_str_radix("hello", 36).unwrap();
        assert_eq!(n.to_u64(), Some(29234652));
        // Case-insensitive like BigInteger.
        let m = BigUint::from_str_radix("HELLO", 36).unwrap();
        assert_eq!(n, m);
    }

    #[test]
    fn parse_base_2_and_16() {
        assert_eq!(
            BigUint::from_str_radix("11111111", 2).unwrap().to_u64(),
            Some(255)
        );
        assert_eq!(
            BigUint::from_str_radix("deadBEEF", 16).unwrap().to_u64(),
            Some(0xdead_beef)
        );
    }

    #[test]
    fn parse_rejects_bad_digits() {
        assert!(matches!(
            BigUint::from_str_radix("12a", 10),
            Err(ParseBigIntError::InvalidDigit { ch: 'a', radix: 10 })
        ));
        assert!(matches!(
            BigUint::from_str_radix("", 36),
            Err(ParseBigIntError::Empty)
        ));
        assert!(BigUint::from_str_radix("z!", 36).is_err());
    }

    #[test]
    fn format_roundtrips_all_radices() {
        let n = BigUint::from_str_radix("123456789123456789123456789123456789", 10).unwrap();
        for radix in 2..=36 {
            let s = n.to_str_radix(radix);
            let back = BigUint::from_str_radix(&s, radix).unwrap();
            assert_eq!(back, n, "radix {radix} failed: {s}");
        }
    }

    #[test]
    fn format_zero_and_small() {
        assert_eq!(BigUint::zero().to_str_radix(36), "0");
        assert_eq!(BigUint::from(35u64).to_str_radix(36), "z");
        assert_eq!(BigUint::from(36u64).to_str_radix(36), "10");
    }

    #[test]
    fn display_is_base_10() {
        let n = BigUint::from_str_radix("987654321", 10).unwrap();
        assert_eq!(n.to_string(), "987654321");
    }
}
