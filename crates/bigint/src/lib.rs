//! Arbitrary-precision integer arithmetic.
//!
//! This crate is the substrate standing in for `java.math.BigInteger` in the
//! reproduction of *Embedding Concurrent Generators* (Mills & Jeffery, IPDPS
//! HIPS 2016). The paper's evaluation (Sec. VII) hashes words by parsing them
//! as base-36 integers, taking square roots, and — in the heavyweight variant
//! — exercising `BigInteger`'s prime-number functions. All of those
//! operations are provided here:
//!
//! * [`BigUint`] — unsigned magnitude arithmetic on 64-bit limbs
//!   (add/sub/mul/divrem, shifts, comparison, bit queries);
//! * [`BigInt`] — signed wrapper over [`BigUint`];
//! * radix parsing and formatting for bases 2–36 ([`BigUint::from_str_radix`],
//!   [`BigUint::to_str_radix`]);
//! * integer square root ([`BigUint::sqrt`]);
//! * modular exponentiation ([`BigUint::modpow`]) and Miller–Rabin
//!   probabilistic primality ([`BigUint::is_probable_prime`],
//!   [`BigUint::next_probable_prime`]);
//! * lossy conversion to `f64` ([`BigUint::to_f64`]).
//!
//! The implementation favours clarity and testability over asymptotic
//! sophistication: multiplication is schoolbook and division is Knuth's
//! Algorithm D, which is more than adequate for the word-hash workloads the
//! paper benchmarks (numbers of a few machine words).

mod bigint;
mod biguint;
mod prime;
mod radix;
mod sqrt;

pub use crate::bigint::{BigInt, Sign};
pub use crate::biguint::BigUint;
pub use crate::radix::ParseBigIntError;
