//! Property-based tests over the bigint substrate.
//!
//! These check algebraic laws (ring axioms, division identities, radix
//! round-trips) on randomly generated multi-limb values, which is where
//! hand-picked unit tests are weakest.

use bigint::{BigInt, BigUint};
use tinyprop::prelude::*;

/// Arbitrary BigUint up to four limbs (enough to cross every carry path).
fn arb_biguint() -> impl Strategy<Value = BigUint> {
    prop::collection::vec(any::<u64>(), 0..4).prop_map(BigUint::from_limbs)
}

fn arb_bigint() -> impl Strategy<Value = BigInt> {
    (arb_biguint(), any::<bool>()).prop_map(|(mag, neg)| {
        let sign = if neg {
            bigint::Sign::Negative
        } else {
            bigint::Sign::Positive
        };
        BigInt::from_sign_mag(sign, mag)
    })
}

proptest! {
    #[test]
    fn add_commutes(a in arb_biguint(), b in arb_biguint()) {
        prop_assert_eq!(a.add_ref(&b), b.add_ref(&a));
    }

    #[test]
    fn add_associates(a in arb_biguint(), b in arb_biguint(), c in arb_biguint()) {
        prop_assert_eq!(a.add_ref(&b).add_ref(&c), a.add_ref(&b.add_ref(&c)));
    }

    #[test]
    fn sub_inverts_add(a in arb_biguint(), b in arb_biguint()) {
        prop_assert_eq!(a.add_ref(&b).checked_sub_ref(&b), Some(a));
    }

    #[test]
    fn mul_commutes(a in arb_biguint(), b in arb_biguint()) {
        prop_assert_eq!(a.mul_ref(&b), b.mul_ref(&a));
    }

    #[test]
    fn mul_distributes_over_add(a in arb_biguint(), b in arb_biguint(), c in arb_biguint()) {
        prop_assert_eq!(
            a.mul_ref(&b.add_ref(&c)),
            a.mul_ref(&b).add_ref(&a.mul_ref(&c))
        );
    }

    #[test]
    fn division_identity(a in arb_biguint(), b in arb_biguint()) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(&b);
        prop_assert_eq!(q.mul_ref(&b).add_ref(&r), a);
        prop_assert!(r < b);
    }

    #[test]
    fn shl_is_mul_by_power_of_two(a in arb_biguint(), bits in 0u64..130) {
        let two_k = BigUint::one().shl_bits(bits);
        prop_assert_eq!(a.shl_bits(bits), a.mul_ref(&two_k));
    }

    #[test]
    fn shr_is_div_by_power_of_two(a in arb_biguint(), bits in 0u64..130) {
        let two_k = BigUint::one().shl_bits(bits);
        prop_assert_eq!(a.shr_bits(bits), a.div_rem(&two_k).0);
    }

    #[test]
    fn radix_roundtrip(a in arb_biguint(), radix in 2u32..=36) {
        let s = a.to_str_radix(radix);
        prop_assert_eq!(BigUint::from_str_radix(&s, radix).unwrap(), a);
    }

    #[test]
    fn sqrt_brackets(a in arb_biguint()) {
        let r = a.sqrt();
        prop_assert!(r.mul_ref(&r) <= a);
        let r1 = r.add_ref(&BigUint::one());
        prop_assert!(r1.mul_ref(&r1) > a);
    }

    #[test]
    fn modpow_matches_pow_for_small_exponents(
        base in 0u64..1000, exp in 0u64..12, m in 1u64..100000
    ) {
        let b = BigUint::from(base);
        let m = BigUint::from(m);
        let full = b.pow(exp).div_rem(&m).1;
        prop_assert_eq!(b.modpow(&BigUint::from(exp), &m), full);
    }

    #[test]
    fn u64_arithmetic_agrees(a in any::<u32>(), b in any::<u32>()) {
        let (a64, b64) = (a as u64, b as u64);
        prop_assert_eq!(
            BigUint::from(a64).add_ref(&BigUint::from(b64)).to_u64(),
            Some(a64 + b64)
        );
        prop_assert_eq!(
            BigUint::from(a64).mul_ref(&BigUint::from(b64)).to_u64(),
            Some(a64 * b64)
        );
    }

    #[test]
    fn signed_add_matches_i64(a in -1_000_000i64..1_000_000, b in -1_000_000i64..1_000_000) {
        let s = &BigInt::from(a) + &BigInt::from(b);
        prop_assert_eq!(s.to_i64(), Some(a + b));
    }

    #[test]
    fn signed_mul_matches_i64(a in -1_000_000i64..1_000_000, b in -1_000_000i64..1_000_000) {
        let p = &BigInt::from(a) * &BigInt::from(b);
        prop_assert_eq!(p.to_i64(), Some(a * b));
    }

    #[test]
    fn signed_div_rem_matches_i64(a in -1_000_000i64..1_000_000, b in -1000i64..1000) {
        prop_assume!(b != 0);
        let (q, r) = BigInt::from(a).div_rem(&BigInt::from(b));
        prop_assert_eq!(q.to_i64(), Some(a / b));
        prop_assert_eq!(r.to_i64(), Some(a % b));
    }

    #[test]
    fn signed_ordering_matches_i64(a in any::<i32>(), b in any::<i32>()) {
        prop_assert_eq!(
            BigInt::from(a as i64).cmp(&BigInt::from(b as i64)),
            (a as i64).cmp(&(b as i64))
        );
    }

    #[test]
    fn neg_is_involution(a in arb_bigint()) {
        prop_assert_eq!(-(-a.clone()), a);
    }

    #[test]
    fn to_f64_is_close(a in arb_biguint()) {
        prop_assume!(!a.is_zero());
        // Round-trip through the decimal representation parsed by Rust's f64.
        let expected: f64 = a.to_str_radix(10).parse().unwrap();
        let got = a.to_f64();
        prop_assert!((got - expected).abs() <= expected.abs() * 1e-9,
            "got {got}, expected {expected}");
    }
}
