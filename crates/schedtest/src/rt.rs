//! Virtual scheduler runtime: one global baton, real OS threads.
//!
//! Exactly one *vthread* (a closure running on a pooled worker) executes at
//! a time. At every synchronization point the running vthread declares its
//! next operation ([`Op`]), parks, and hands the baton to the driver
//! ([`run_once`]), which computes the enabled set from the declared ops and
//! the virtual object table, asks the exploration strategy for a choice,
//! and passes the baton on. Performing an op's effects (acquiring a
//! virtual lock, enqueueing on a condvar, ...) happens when the thread is
//! *scheduled*, under the global lock, so the object table only ever moves
//! at decision points.
//!
//! Failed runs can leave permanently-blocked vthreads behind; they are
//! generation-stamped, so they park forever as zombies (their worker is
//! leaked and the pool spawns a replacement). Exploration stops at the
//! first failure, so the leak is bounded by one run's thread count.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Condvar as StdCondvar, Mutex as StdMutex, OnceLock};

/// Virtual thread index, assigned in creation order (test body = 0).
pub type Tid = usize;
/// Virtual synchronization-object index, assigned in first-use order.
pub type ObjId = usize;

/// The operation a vthread has declared it will perform when next
/// scheduled. Up to two object ids; used for enabledness and for the
/// sleep-set dependence relation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// About to start running the body (no effect; always enabled).
    Start,
    /// Acquire a mutex (enabled iff unowned).
    Lock(ObjId),
    /// Try to acquire a mutex (always enabled; may report failure).
    TryLock(ObjId),
    /// Release a mutex. A yield point: a sleeping `TryLock` is dependent
    /// on the release, so it must be visible to the pruner.
    Unlock(ObjId),
    /// Acquire a read lock (enabled iff no writer).
    RwRead(ObjId),
    /// Acquire a write lock (enabled iff no readers and no writer).
    RwWrite(ObjId),
    /// Non-blocking read acquire (always enabled).
    TryRwRead(ObjId),
    /// Non-blocking write acquire (always enabled).
    TryRwWrite(ObjId),
    /// Release a read lock.
    RwUnlockRead(ObjId),
    /// Release a write lock.
    RwUnlockWrite(ObjId),
    /// Atomically release mutex `m` and join `cv`'s waiter queue
    /// (always enabled; the *wait* happens via the follow-up op).
    CondWait { cv: ObjId, m: ObjId },
    /// Reacquire `m` after a wait on `cv`. Untimed (`timeout_ns: None`):
    /// enabled iff notified (dequeued) and `m` free. Timed: enabled
    /// whenever `m` is free — scheduling it while still queued *is* the
    /// timeout branch, which also advances the virtual clock by the
    /// consumed timeout.
    Reacquire {
        cv: ObjId,
        m: ObjId,
        timeout_ns: Option<u64>,
    },
    /// Wake the longest-waiting thread on `cv`, if any. A yield point:
    /// dependent with a concurrent wait-begin on the same condvar.
    Notify(ObjId),
    /// Wake every thread waiting on `cv`.
    NotifyAll(ObjId),
    /// Read an atomic cell (two loads of the same cell commute).
    AtomicLoad(ObjId),
    /// Write or read-modify-write an atomic cell.
    AtomicRmw(ObjId),
    /// Register a child vthread (two spawns are dependent: they race for
    /// the next thread index, which replay relies on).
    Spawn,
    /// Wait for a child to terminate (enabled iff it has).
    Join(Tid),
    /// Plain scheduling point (`yield_now`).
    Yield,
    /// Virtual `thread::sleep`: a scheduling point that also advances the
    /// run's virtual clock by the slept nanoseconds. Always enabled — the
    /// explorer covers every ordering a real delay could select, without
    /// real waiting.
    Sleep(u64),
    /// Final op of every vthread (always enabled; marks it terminated).
    Terminate,
}

impl Op {
    fn objects(&self) -> (Option<ObjId>, Option<ObjId>) {
        use Op::*;
        match *self {
            Lock(o) | TryLock(o) | Unlock(o) | RwRead(o) | RwWrite(o) | TryRwRead(o)
            | TryRwWrite(o) | RwUnlockRead(o) | RwUnlockWrite(o) | Notify(o) | NotifyAll(o)
            | AtomicLoad(o) | AtomicRmw(o) => (Some(o), None),
            CondWait { cv, m } | Reacquire { cv, m, .. } => (Some(cv), Some(m)),
            Start | Spawn | Join(_) | Yield | Sleep(_) | Terminate => (None, None),
        }
    }
}

/// Dependence relation for sleep-set pruning. Conservative: two ops are
/// independent only when reordering them provably reaches the same state.
pub fn ops_dependent(a: &Op, b: &Op) -> bool {
    use Op::*;
    match (a, b) {
        // Spawns race for the next vthread index.
        (Spawn, Spawn) => true,
        // Pure reads commute even on the same object.
        (AtomicLoad(_), AtomicLoad(_)) => false,
        (RwRead(_) | TryRwRead(_), RwRead(_) | TryRwRead(_)) => false,
        _ => {
            let (a1, a2) = a.objects();
            let (b1, b2) = b.objects();
            let hits = |x: Option<ObjId>| x.is_some() && (x == b1 || x == b2);
            hits(a1) || hits(a2)
        }
    }
}

/// What `yield_op` reports back to the shim that declared the op.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum StepOutcome {
    /// Op performed; nothing to report.
    Proceed,
    /// `Try*` op: whether the acquisition succeeded.
    TryResult(bool),
    /// Timed `Reacquire`: whether the wait timed out.
    TimedOut(bool),
}

enum ObjState {
    Mutex {
        owner: Option<Tid>,
    },
    Cond {
        waiters: VecDeque<Tid>,
    },
    Rw {
        writer: Option<Tid>,
        readers: Vec<Tid>,
    },
    Atomic,
}

/// Kind tag used when a shim object lazily registers itself.
#[derive(Clone, Copy, Debug)]
pub(crate) enum ObjKind {
    Mutex,
    Cond,
    Rw,
    Atomic,
}

struct VThread {
    pending: Op,
    terminated: bool,
}

struct Rt {
    /// Bumped at every run start; stale-generation vthreads park forever.
    generation: u64,
    /// `Some(t)`: vthread `t` holds the baton. `None`: the driver does.
    active: Option<Tid>,
    threads: Vec<VThread>,
    objects: Vec<ObjState>,
    failure: Option<String>,
    /// Virtual clock, reset per run: the sum of every `Sleep` duration
    /// and consumed wait timeout executed so far. No enabledness depends
    /// on it — timeouts fire by scheduling choice — so it is pure
    /// observability ([`crate::time::now`]).
    now_ns: u64,
}

fn global() -> &'static (StdMutex<Rt>, StdCondvar) {
    static G: OnceLock<(StdMutex<Rt>, StdCondvar)> = OnceLock::new();
    G.get_or_init(|| {
        (
            StdMutex::new(Rt {
                generation: 0,
                active: None,
                threads: Vec::new(),
                objects: Vec::new(),
                failure: None,
                now_ns: 0,
            }),
            StdCondvar::new(),
        )
    })
}

thread_local! {
    /// `(generation, tid)` of the vthread this OS thread is currently
    /// hosting, if any. `None` on the driver and on unregistered threads
    /// (which fall back to real std synchronization in the shims).
    static SELF_ID: std::cell::Cell<Option<(u64, Tid)>> =
        const { std::cell::Cell::new(None) };
}

/// The `(generation, tid)` of the calling vthread, or `None` when the
/// caller is not part of the active model run (shims then use real locks).
pub(crate) fn current_vthread() -> Option<(u64, Tid)> {
    SELF_ID.with(|c| c.get())
}

/// Lazily allocate a virtual object id for the current run.
pub(crate) fn register_object(gen: u64, kind: ObjKind) -> ObjId {
    let (lk, _) = global();
    let mut g = lk.lock().unwrap_or_else(|p| p.into_inner());
    assert_eq!(g.generation, gen, "object registered from a stale run");
    g.objects.push(match kind {
        ObjKind::Mutex => ObjState::Mutex { owner: None },
        ObjKind::Cond => ObjState::Cond {
            waiters: VecDeque::new(),
        },
        ObjKind::Rw => ObjState::Rw {
            writer: None,
            readers: Vec::new(),
        },
        ObjKind::Atomic => ObjState::Atomic,
    });
    g.objects.len() - 1
}

/// Record the run's first failure (later ones lose the race and are
/// dropped; exploration stops at the first anyway).
pub(crate) fn record_failure(gen: u64, msg: String) {
    let (lk, cv) = global();
    let mut g = lk.lock().unwrap_or_else(|p| p.into_inner());
    if g.generation == gen && g.failure.is_none() {
        g.failure = Some(msg);
        cv.notify_all();
    }
}

/// Register a child vthread (pending op `Start`) and hand its body to a
/// pooled worker. Must be called by the currently-scheduled vthread, so
/// the driver cannot observe a half-registered child.
pub(crate) fn register_child(gen: u64, body: Box<dyn FnOnce() + Send>) -> Tid {
    let tid = {
        let (lk, _) = global();
        let mut g = lk.lock().unwrap_or_else(|p| p.into_inner());
        assert_eq!(g.generation, gen, "spawn from a stale run");
        g.threads.push(VThread {
            pending: Op::Start,
            terminated: false,
        });
        g.threads.len() - 1
    };
    dispatch_vthread(gen, tid, body);
    tid
}

fn dispatch_vthread(gen: u64, tid: Tid, body: Box<dyn FnOnce() + Send>) {
    pool_run(Box::new(move || {
        SELF_ID.with(|c| c.set(Some((gen, tid))));
        if wait_first_schedule(gen, tid) {
            // `body` is pre-wrapped: it never unwinds (panics are caught,
            // recorded as the run's failure, and delivered to the join
            // slot inside the wrapper).
            body();
            yield_op(Op::Terminate);
        }
        SELF_ID.with(|c| c.set(None));
    }));
}

/// Park until this vthread is scheduled for the first time. Returns false
/// if the run was abandoned before that ever happened (worker recycled).
fn wait_first_schedule(gen: u64, me: Tid) -> bool {
    let (lk, cv) = global();
    let mut g = lk.lock().unwrap_or_else(|p| p.into_inner());
    loop {
        if g.generation != gen {
            return false;
        }
        if g.active == Some(me) {
            return true;
        }
        g = cv.wait(g).unwrap_or_else(|p| p.into_inner());
    }
}

/// The heart of the protocol: declare `op`, give the baton to the driver,
/// park until scheduled, then perform the op's effects under the global
/// lock and resume user code. Called from every shim synchronization
/// point; a no-op for unregistered threads.
pub(crate) fn yield_op(op: Op) -> StepOutcome {
    let Some((gen, me)) = current_vthread() else {
        return StepOutcome::Proceed;
    };
    let (lk, cv) = global();
    let mut g = lk.lock().unwrap_or_else(|p| p.into_inner());
    if g.generation != gen {
        // The run was abandoned while we were executing user code. We
        // cannot unwind safely from here (drop glue would re-enter the
        // scheduler), so park forever as a zombie; the worker is leaked.
        loop {
            g = cv.wait(g).unwrap_or_else(|p| p.into_inner());
        }
    }
    g.threads[me].pending = op.clone();
    g.active = None;
    cv.notify_all();
    while !(g.generation == gen && g.active == Some(me)) {
        if g.generation != gen {
            loop {
                g = cv.wait(g).unwrap_or_else(|p| p.into_inner());
            }
        }
        g = cv.wait(g).unwrap_or_else(|p| p.into_inner());
    }
    let out = perform(&mut g, me, &op);
    if matches!(op, Op::Terminate) {
        g.threads[me].terminated = true;
        g.active = None;
        cv.notify_all();
    }
    out
}

/// Apply `op`'s effects to the virtual object table. The scheduler only
/// schedules enabled ops, so blocking acquisitions always succeed here.
fn perform(g: &mut Rt, me: Tid, op: &Op) -> StepOutcome {
    use Op::*;
    match *op {
        Start | Yield | Spawn | Join(_) | Terminate | AtomicLoad(_) | AtomicRmw(_) => {
            StepOutcome::Proceed
        }
        Sleep(ns) => {
            g.now_ns = g.now_ns.saturating_add(ns);
            StepOutcome::Proceed
        }
        Lock(o) => {
            let ObjState::Mutex { owner } = &mut g.objects[o] else {
                unreachable!("lock on non-mutex object")
            };
            debug_assert!(owner.is_none());
            *owner = Some(me);
            StepOutcome::Proceed
        }
        TryLock(o) => {
            let ObjState::Mutex { owner } = &mut g.objects[o] else {
                unreachable!("try_lock on non-mutex object")
            };
            if owner.is_none() {
                *owner = Some(me);
                StepOutcome::TryResult(true)
            } else {
                StepOutcome::TryResult(false)
            }
        }
        Unlock(o) => {
            let ObjState::Mutex { owner } = &mut g.objects[o] else {
                unreachable!("unlock on non-mutex object")
            };
            debug_assert_eq!(*owner, Some(me));
            *owner = None;
            StepOutcome::Proceed
        }
        RwRead(o) => {
            let ObjState::Rw { readers, .. } = &mut g.objects[o] else {
                unreachable!("read on non-rwlock object")
            };
            readers.push(me);
            StepOutcome::Proceed
        }
        RwWrite(o) => {
            let ObjState::Rw { writer, .. } = &mut g.objects[o] else {
                unreachable!("write on non-rwlock object")
            };
            *writer = Some(me);
            StepOutcome::Proceed
        }
        TryRwRead(o) => {
            let ObjState::Rw { writer, readers } = &mut g.objects[o] else {
                unreachable!("try_read on non-rwlock object")
            };
            if writer.is_none() {
                readers.push(me);
                StepOutcome::TryResult(true)
            } else {
                StepOutcome::TryResult(false)
            }
        }
        TryRwWrite(o) => {
            let ObjState::Rw { writer, readers } = &mut g.objects[o] else {
                unreachable!("try_write on non-rwlock object")
            };
            if writer.is_none() && readers.is_empty() {
                *writer = Some(me);
                StepOutcome::TryResult(true)
            } else {
                StepOutcome::TryResult(false)
            }
        }
        RwUnlockRead(o) => {
            let ObjState::Rw { readers, .. } = &mut g.objects[o] else {
                unreachable!("read-unlock on non-rwlock object")
            };
            if let Some(pos) = readers.iter().position(|&t| t == me) {
                readers.swap_remove(pos);
            }
            StepOutcome::Proceed
        }
        RwUnlockWrite(o) => {
            let ObjState::Rw { writer, .. } = &mut g.objects[o] else {
                unreachable!("write-unlock on non-rwlock object")
            };
            *writer = None;
            StepOutcome::Proceed
        }
        CondWait { cv, m } => {
            {
                let ObjState::Mutex { owner } = &mut g.objects[m] else {
                    unreachable!("cond_wait releasing a non-mutex")
                };
                debug_assert_eq!(*owner, Some(me));
                *owner = None;
            }
            let ObjState::Cond { waiters } = &mut g.objects[cv] else {
                unreachable!("cond_wait on non-condvar object")
            };
            waiters.push_back(me);
            StepOutcome::Proceed
        }
        Reacquire { cv, m, timeout_ns } => {
            let still_queued = {
                let ObjState::Cond { waiters } = &mut g.objects[cv] else {
                    unreachable!("reacquire on non-condvar object")
                };
                match waiters.iter().position(|&t| t == me) {
                    Some(pos) => {
                        debug_assert!(
                            timeout_ns.is_some(),
                            "untimed reacquire scheduled while queued"
                        );
                        waiters.remove(pos);
                        true
                    }
                    None => false,
                }
            };
            if still_queued {
                // The timeout branch consumed its full wait.
                g.now_ns = g.now_ns.saturating_add(timeout_ns.unwrap_or(0));
            }
            let ObjState::Mutex { owner } = &mut g.objects[m] else {
                unreachable!("reacquire of a non-mutex")
            };
            debug_assert!(owner.is_none());
            *owner = Some(me);
            StepOutcome::TimedOut(still_queued)
        }
        Notify(o) => {
            let ObjState::Cond { waiters } = &mut g.objects[o] else {
                unreachable!("notify on non-condvar object")
            };
            waiters.pop_front();
            StepOutcome::Proceed
        }
        NotifyAll(o) => {
            let ObjState::Cond { waiters } = &mut g.objects[o] else {
                unreachable!("notify_all on non-condvar object")
            };
            waiters.clear();
            StepOutcome::Proceed
        }
    }
}

/// Is `t`'s declared op currently executable?
fn enabled(g: &Rt, t: Tid) -> bool {
    use Op::*;
    if g.threads[t].terminated {
        return false;
    }
    let mutex_free = |o: ObjId| match &g.objects[o] {
        ObjState::Mutex { owner } => owner.is_none(),
        _ => unreachable!("mutex-enabledness of non-mutex"),
    };
    match g.threads[t].pending {
        Lock(o) => mutex_free(o),
        RwRead(o) => match &g.objects[o] {
            ObjState::Rw { writer, .. } => writer.is_none(),
            _ => unreachable!(),
        },
        RwWrite(o) => match &g.objects[o] {
            ObjState::Rw { writer, readers } => writer.is_none() && readers.is_empty(),
            _ => unreachable!(),
        },
        Reacquire { cv, m, timeout_ns } => {
            let queued = match &g.objects[cv] {
                ObjState::Cond { waiters } => waiters.contains(&t),
                _ => unreachable!(),
            };
            mutex_free(m) && (timeout_ns.is_some() || !queued)
        }
        Join(child) => g.threads[child].terminated,
        _ => true,
    }
}

/// What the exploration strategy sees at each decision point.
pub(crate) struct StepView<'a> {
    /// Tids whose pending op can execute now, ascending.
    pub enabled: &'a [Tid],
    /// Pending op of every live (non-terminated) thread, by tid.
    pub ops: &'a [(Tid, Op)],
}

/// Result of executing one complete schedule.
pub(crate) struct RunOutcome {
    pub schedule: Vec<Tid>,
    pub failure: Option<String>,
}

/// Execute one run of `body` under the decisions of `decide`, which is
/// called with the step index and the current [`StepView`] and must return
/// one of the enabled tids.
pub(crate) fn run_once(
    body: std::sync::Arc<dyn Fn() + Send + Sync>,
    max_depth: usize,
    mut decide: impl FnMut(usize, &StepView<'_>) -> Tid,
) -> RunOutcome {
    let (lk, cv) = global();
    let gen = {
        let mut g = lk.lock().unwrap_or_else(|p| p.into_inner());
        g.generation += 1;
        g.active = None;
        g.threads.clear();
        g.threads.push(VThread {
            pending: Op::Start,
            terminated: false,
        });
        g.objects.clear();
        g.failure = None;
        g.now_ns = 0;
        // Wake any worker still parked in `wait_first_schedule` from an
        // abandoned previous run so it can recycle itself.
        cv.notify_all();
        g.generation
    };
    dispatch_vthread(
        gen,
        0,
        Box::new(move || {
            if let Err(p) = catch_unwind(AssertUnwindSafe(|| body())) {
                record_failure(gen, format!("test body panicked: {}", panic_message(&*p)));
            }
        }),
    );

    let mut schedule = Vec::new();
    loop {
        let mut g = lk.lock().unwrap_or_else(|p| p.into_inner());
        while g.active.is_some() {
            g = cv.wait(g).unwrap_or_else(|p| p.into_inner());
        }
        if g.failure.is_some() {
            // Let already-unwound threads finish their Terminate handshake
            // (recycling their workers), then stop; blocked threads are
            // leaked as generation-stamped zombies.
            if let Some(t) = (0..g.threads.len()).find(|&t| {
                !g.threads[t].terminated && matches!(g.threads[t].pending, Op::Terminate)
            }) {
                schedule.push(t);
                g.active = Some(t);
                cv.notify_all();
                continue;
            }
            return RunOutcome {
                schedule,
                failure: g.failure.clone(),
            };
        }
        let live: Vec<Tid> = (0..g.threads.len())
            .filter(|&t| !g.threads[t].terminated)
            .collect();
        if live.is_empty() {
            return RunOutcome {
                schedule,
                failure: None,
            };
        }
        let en: Vec<Tid> = live.iter().copied().filter(|&t| enabled(&g, t)).collect();
        if en.is_empty() {
            let mut msg = String::from("deadlock: no enabled thread; pending ops:");
            for &t in &live {
                msg.push_str(&format!(" [{t}] {:?}", g.threads[t].pending));
            }
            g.failure = Some(msg.clone());
            return RunOutcome {
                schedule,
                failure: Some(msg),
            };
        }
        if schedule.len() >= max_depth {
            let msg = format!("run exceeded max_depth={max_depth} scheduling decisions");
            g.failure = Some(msg.clone());
            return RunOutcome {
                schedule,
                failure: Some(msg),
            };
        }
        let ops: Vec<(Tid, Op)> = live
            .iter()
            .map(|&t| (t, g.threads[t].pending.clone()))
            .collect();
        let choice = decide(
            schedule.len(),
            &StepView {
                enabled: &en,
                ops: &ops,
            },
        );
        assert!(
            en.contains(&choice),
            "strategy chose disabled thread {choice} (enabled: {en:?}) — \
             replay diverged or the program under test is nondeterministic"
        );
        schedule.push(choice);
        g.active = Some(choice);
        cv.notify_all();
    }
}

/// Current virtual-clock reading (nanoseconds since the run started;
/// 0 when the caller is not a vthread of the active run).
pub(crate) fn clock_ns() -> u64 {
    if current_vthread().is_none() {
        return 0;
    }
    let (lk, _) = global();
    lk.lock().unwrap_or_else(|p| p.into_inner()).now_ns
}

pub(crate) fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

// ---------------------------------------------------------------------------
// Worker pool: vthreads reuse parked OS threads across runs. On a 1-core
// CI host, exhaustive explorations execute thousands of runs; paying an OS
// thread spawn per vthread per run would dominate wall-clock.
// ---------------------------------------------------------------------------

type Job = Box<dyn FnOnce() + Send>;

struct PoolState {
    idle: usize,
    jobs: VecDeque<Job>,
}

fn pool() -> &'static (StdMutex<PoolState>, StdCondvar) {
    static P: OnceLock<(StdMutex<PoolState>, StdCondvar)> = OnceLock::new();
    P.get_or_init(|| {
        (
            StdMutex::new(PoolState {
                idle: 0,
                jobs: VecDeque::new(),
            }),
            StdCondvar::new(),
        )
    })
}

fn pool_run(job: Job) {
    let (lk, cv) = pool();
    let mut p = lk.lock().unwrap_or_else(|e| e.into_inner());
    p.jobs.push_back(job);
    if p.idle == 0 {
        drop(p);
        std::thread::Builder::new()
            .name("schedtest-worker".to_string())
            .spawn(pool_worker)
            .expect("spawn schedtest worker");
    } else {
        cv.notify_one();
    }
}

fn pool_worker() {
    let (lk, cv) = pool();
    loop {
        let job = {
            let mut p = lk.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(j) = p.jobs.pop_front() {
                    break j;
                }
                p.idle += 1;
                p = cv.wait(p).unwrap_or_else(|e| e.into_inner());
                p.idle -= 1;
            }
        };
        job();
    }
}
