//! Virtualized atomics. Each access is a scheduling point declared to the
//! explorer (loads commute with loads; everything else on the same cell is
//! dependent); the value itself lives in a real `std` atomic, touched only
//! while the owning vthread holds the baton.

use crate::rt::{self, ObjId, ObjKind, Op};
use std::sync::atomic as std_atomic;
use std::sync::Mutex as StdMutex;

pub use std_atomic::Ordering;

macro_rules! virtual_atomic {
    ($name:ident, $std:ty, $int:ty) => {
        /// Virtualized counterpart of the std atomic of the same name.
        pub struct $name {
            vid: StdMutex<(u64, ObjId)>,
            inner: $std,
        }

        impl $name {
            /// Create a new atomic with the given initial value.
            pub const fn new(v: $int) -> Self {
                $name {
                    vid: StdMutex::new((0, 0)),
                    inner: <$std>::new(v),
                }
            }

            fn declare(&self, rmw: bool) {
                let Some((gen, _)) = rt::current_vthread() else {
                    return;
                };
                let id = {
                    let mut s = self.vid.lock().unwrap_or_else(|p| p.into_inner());
                    if s.0 != gen {
                        *s = (gen, rt::register_object(gen, ObjKind::Atomic));
                    }
                    s.1
                };
                rt::yield_op(if rmw {
                    Op::AtomicRmw(id)
                } else {
                    Op::AtomicLoad(id)
                });
            }

            /// Load the value.
            pub fn load(&self, order: Ordering) -> $int {
                self.declare(false);
                self.inner.load(order)
            }

            /// Store a value.
            pub fn store(&self, v: $int, order: Ordering) {
                self.declare(true);
                self.inner.store(v, order)
            }

            /// Swap in a value, returning the previous one.
            pub fn swap(&self, v: $int, order: Ordering) -> $int {
                self.declare(true);
                self.inner.swap(v, order)
            }

            /// Compare-and-exchange.
            pub fn compare_exchange(
                &self,
                current: $int,
                new: $int,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$int, $int> {
                self.declare(true);
                self.inner.compare_exchange(current, new, success, failure)
            }

            /// Mutably borrow the value (`&mut self` proves uniqueness).
            pub fn get_mut(&mut self) -> &mut $int {
                self.inner.get_mut()
            }

            /// Consume the atomic, returning the value.
            pub fn into_inner(self) -> $int {
                self.inner.into_inner()
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.debug_tuple(stringify!($name))
                    .field(&self.inner.load(Ordering::SeqCst))
                    .finish()
            }
        }
    };
}

virtual_atomic!(AtomicUsize, std_atomic::AtomicUsize, usize);
virtual_atomic!(AtomicU64, std_atomic::AtomicU64, u64);
virtual_atomic!(AtomicBool, std_atomic::AtomicBool, bool);

macro_rules! arith_ops {
    ($name:ident, $int:ty) => {
        impl $name {
            /// Add, returning the previous value.
            pub fn fetch_add(&self, v: $int, order: Ordering) -> $int {
                self.declare(true);
                self.inner.fetch_add(v, order)
            }

            /// Subtract, returning the previous value.
            pub fn fetch_sub(&self, v: $int, order: Ordering) -> $int {
                self.declare(true);
                self.inner.fetch_sub(v, order)
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::new(0)
            }
        }
    };
}

arith_ops!(AtomicUsize, usize);
arith_ops!(AtomicU64, u64);

impl AtomicBool {
    /// Logical-or, returning the previous value.
    pub fn fetch_or(&self, v: bool, order: Ordering) -> bool {
        self.declare(true);
        self.inner.fetch_or(v, order)
    }

    /// Logical-and, returning the previous value.
    pub fn fetch_and(&self, v: bool, order: Ordering) -> bool {
        self.declare(true);
        self.inner.fetch_and(v, order)
    }
}

impl Default for AtomicBool {
    fn default() -> Self {
        Self::new(false)
    }
}
