//! Virtual synchronization primitives, API-compatible with the
//! `parking_lot` shim (plus the atomics and `Arc` the runtime crates use).
//!
//! Inside a model run (the calling OS thread hosts a registered vthread)
//! every operation first declares itself to the scheduler and parks until
//! chosen; mutual exclusion is *decided* by the virtual object table and
//! merely *mirrored* by an underlying `std::sync` lock, which is only ever
//! touched while the owning vthread holds the scheduling baton and is
//! therefore uncontended. Outside a run the same types degrade to the
//! plain `std::sync`-backed behaviour of the shim, so code paths that mix
//! model and non-model threads (test harness setup, leaked statics) stay
//! correct.

use crate::rt::{self, ObjId, ObjKind, Op, StepOutcome};
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, Mutex as StdMutex};
use std::time::{Duration, Instant};

pub use std::sync::Arc;

pub mod atomic;

/// Lazily-assigned per-run virtual object id. Ids are allocated in first-
/// use order within a run, which is deterministic under a fixed schedule
/// prefix — the property sleep sets and replay rely on.
struct VirtualId {
    slot: StdMutex<(u64, ObjId)>,
    kind: ObjKind,
}

impl VirtualId {
    const fn new(kind: ObjKind) -> Self {
        VirtualId {
            slot: StdMutex::new((0, 0)),
            kind,
        }
    }

    /// The object's id in the current run, or `None` when the caller is
    /// not a registered vthread (fallback path).
    fn get(&self) -> Option<ObjId> {
        let (gen, _) = rt::current_vthread()?;
        let mut s = self.slot.lock().unwrap_or_else(|p| p.into_inner());
        if s.0 != gen {
            *s = (gen, rt::register_object(gen, self.kind));
        }
        Some(s.1)
    }
}

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// Virtualized mutex with the parking_lot-style panic-free `lock()` API.
pub struct Mutex<T: ?Sized> {
    vid: VirtualId,
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`]. Holds a back-reference to the
/// mutex so [`Condvar::wait`] can release and reacquire it in place.
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    inner: Option<sync::MutexGuard<'a, T>>,
    /// `Some(id)`: acquired through the virtual scheduler; drop must
    /// declare the unlock as a scheduling point.
    vid: Option<ObjId>,
}

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            vid: VirtualId::new(ObjKind::Mutex),
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    fn lock_real(&self) -> sync::MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire the lock. In a model run this is a scheduling point that
    /// blocks (virtually) until the scheduler grants ownership.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.vid.get() {
            Some(id) => {
                rt::yield_op(Op::Lock(id));
                // The scheduler granted virtual ownership, so the real
                // lock is free (its holder released it before its next
                // scheduling point).
                MutexGuard {
                    lock: self,
                    inner: Some(self.lock_real()),
                    vid: Some(id),
                }
            }
            None => MutexGuard {
                lock: self,
                inner: Some(self.lock_real()),
                vid: None,
            },
        }
    }

    /// Attempt to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.vid.get() {
            Some(id) => match rt::yield_op(Op::TryLock(id)) {
                StepOutcome::TryResult(true) => Some(MutexGuard {
                    lock: self,
                    inner: Some(self.lock_real()),
                    vid: Some(id),
                }),
                StepOutcome::TryResult(false) => None,
                _ => unreachable!("TryLock reports TryResult"),
            },
            None => match self.inner.try_lock() {
                Ok(g) => Some(MutexGuard {
                    lock: self,
                    inner: Some(g),
                    vid: None,
                }),
                Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                    lock: self,
                    inner: Some(p.into_inner()),
                    vid: None,
                }),
                Err(sync::TryLockError::WouldBlock) => None,
            },
        }
    }

    /// Mutably borrow the underlying data (`&mut self` proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_lock() {
            Ok(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            Err(sync::TryLockError::Poisoned(p)) => f
                .debug_struct("Mutex")
                .field("data", &&*p.into_inner())
                .finish(),
            Err(_) => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(id) = self.vid {
            // Release the real lock only after the scheduler has processed
            // the unlock? No: declare first would let another vthread be
            // granted the virtual lock while we still hold the real one.
            // Order matters the other way: the baton is ours until the
            // yield below *returns*, so dropping the real guard first is
            // invisible to every other vthread.
            self.inner = None;
            if rt::current_vthread().is_some() {
                rt::yield_op(Op::Unlock(id));
            }
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner
            .as_ref()
            .expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_mut()
            .expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// Result of a timed wait: reports whether the deadline passed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True iff the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Saturating `Duration` → virtual-clock nanoseconds.
fn duration_ns(d: Duration) -> u64 {
    d.as_nanos().min(u64::MAX as u128) as u64
}

/// Virtualized condition variable. In a model run, waiting is two
/// scheduling points (release + enqueue, then reacquire-after-notify);
/// timed waits stay schedulable while queued, so the explorer covers both
/// the notified and the timed-out branch. No spurious wakeups are
/// injected.
pub struct Condvar {
    vid: VirtualId,
    inner: sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub fn new() -> Self {
        Condvar {
            vid: VirtualId::new(ObjKind::Cond),
            inner: sync::Condvar::new(),
        }
    }

    /// Atomically release the guarded mutex and block until notified;
    /// re-acquires the lock before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        self.wait_inner(guard, None);
    }

    /// [`Condvar::wait`] with an absolute deadline.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        match guard.vid {
            Some(_) if rt::current_vthread().is_some() => {
                // The remaining real time is an approximation of the
                // caller's intent; under the explorer the clock only
                // observes it, never gates on it.
                let remaining = deadline.saturating_duration_since(Instant::now());
                self.wait_inner(guard, Some(duration_ns(remaining)))
                    .expect("timed wait result")
            }
            _ => {
                let timeout = deadline.saturating_duration_since(Instant::now());
                self.real_wait_for(guard, timeout)
            }
        }
    }

    /// [`Condvar::wait`] with a relative timeout.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        match guard.vid {
            Some(_) if rt::current_vthread().is_some() => self
                .wait_inner(guard, Some(duration_ns(timeout)))
                .expect("timed wait result"),
            _ => self.real_wait_for(guard, timeout),
        }
    }

    fn wait_inner<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout_ns: Option<u64>,
    ) -> Option<WaitTimeoutResult> {
        match (guard.vid, self.vid.get()) {
            (Some(m), Some(cv)) => {
                rt::yield_op(Op::CondWait { cv, m });
                // Virtually released and queued; mirror on the real lock.
                guard.inner = None;
                let out = rt::yield_op(Op::Reacquire { cv, m, timeout_ns });
                guard.inner = Some(guard.lock.lock_real());
                match out {
                    StepOutcome::TimedOut(t) => Some(WaitTimeoutResult { timed_out: t }),
                    _ => unreachable!("Reacquire reports TimedOut"),
                }
            }
            _ => {
                // Fallback: behave like the std-backed shim.
                let inner = guard.inner.take().expect("guard not already waiting");
                guard.inner = Some(
                    self.inner
                        .wait(inner)
                        .unwrap_or_else(sync::PoisonError::into_inner),
                );
                None
            }
        }
    }

    fn real_wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard not already waiting");
        let (g, res) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(sync::PoisonError::into_inner);
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    /// Wake one waiting thread (the longest-waiting, deterministically,
    /// in a model run).
    pub fn notify_one(&self) {
        match self.vid.get() {
            Some(id) => {
                rt::yield_op(Op::Notify(id));
            }
            None => self.inner.notify_one(),
        }
    }

    /// Wake all waiting threads.
    pub fn notify_all(&self) {
        match self.vid.get() {
            Some(id) => {
                rt::yield_op(Op::NotifyAll(id));
            }
            None => self.inner.notify_all(),
        }
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Condvar")
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

/// Virtualized reader-writer lock with the parking_lot API.
pub struct RwLock<T: ?Sized> {
    vid: VirtualId,
    inner: sync::RwLock<T>,
}

/// Shared-read RAII guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: Option<sync::RwLockReadGuard<'a, T>>,
    vid: Option<ObjId>,
}

/// Exclusive-write RAII guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: Option<sync::RwLockWriteGuard<'a, T>>,
    vid: Option<ObjId>,
}

impl<T> RwLock<T> {
    /// Create a new reader-writer lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            vid: VirtualId::new(ObjKind::Rw),
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let vid = self.vid.get();
        if let Some(id) = vid {
            rt::yield_op(Op::RwRead(id));
        }
        RwLockReadGuard {
            inner: Some(
                self.inner
                    .read()
                    .unwrap_or_else(sync::PoisonError::into_inner),
            ),
            vid,
        }
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let vid = self.vid.get();
        if let Some(id) = vid {
            rt::yield_op(Op::RwWrite(id));
        }
        RwLockWriteGuard {
            inner: Some(
                self.inner
                    .write()
                    .unwrap_or_else(sync::PoisonError::into_inner),
            ),
            vid,
        }
    }

    /// Attempt shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.vid.get() {
            Some(id) => match rt::yield_op(Op::TryRwRead(id)) {
                StepOutcome::TryResult(true) => Some(RwLockReadGuard {
                    inner: Some(
                        self.inner
                            .read()
                            .unwrap_or_else(sync::PoisonError::into_inner),
                    ),
                    vid: Some(id),
                }),
                StepOutcome::TryResult(false) => None,
                _ => unreachable!("TryRwRead reports TryResult"),
            },
            None => match self.inner.try_read() {
                Ok(g) => Some(RwLockReadGuard {
                    inner: Some(g),
                    vid: None,
                }),
                Err(sync::TryLockError::Poisoned(p)) => Some(RwLockReadGuard {
                    inner: Some(p.into_inner()),
                    vid: None,
                }),
                Err(sync::TryLockError::WouldBlock) => None,
            },
        }
    }

    /// Attempt exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.vid.get() {
            Some(id) => match rt::yield_op(Op::TryRwWrite(id)) {
                StepOutcome::TryResult(true) => Some(RwLockWriteGuard {
                    inner: Some(
                        self.inner
                            .write()
                            .unwrap_or_else(sync::PoisonError::into_inner),
                    ),
                    vid: Some(id),
                }),
                StepOutcome::TryResult(false) => None,
                _ => unreachable!("TryRwWrite reports TryResult"),
            },
            None => match self.inner.try_write() {
                Ok(g) => Some(RwLockWriteGuard {
                    inner: Some(g),
                    vid: None,
                }),
                Err(sync::TryLockError::Poisoned(p)) => Some(RwLockWriteGuard {
                    inner: Some(p.into_inner()),
                    vid: None,
                }),
                Err(sync::TryLockError::WouldBlock) => None,
            },
        }
    }

    /// Mutably borrow the underlying data without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(id) = self.vid {
            self.inner = None;
            if rt::current_vthread().is_some() {
                rt::yield_op(Op::RwUnlockRead(id));
            }
        }
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(id) = self.vid {
            self.inner = None;
            if rt::current_vthread().is_some() {
                rt::yield_op(Op::RwUnlockWrite(id));
            }
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("read guard live")
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("write guard live")
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("write guard live")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            Err(sync::TryLockError::Poisoned(p)) => f
                .debug_struct("RwLock")
                .field("data", &&*p.into_inner())
                .finish(),
            Err(_) => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}
