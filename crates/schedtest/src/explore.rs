//! Exploration strategies over [`rt::run_once`]: exhaustive DFS with
//! DPOR-lite sleep sets and an optional preemption bound, deterministic
//! PRNG sampling, and single-schedule replay.
//!
//! The DFS keeps a stack of decision nodes. Each run replays the stack's
//! chosen prefix, then extends it: at fresh depth a node is created with
//! the observed enabled set and pending ops, its sleep set derived from
//! the parent (a sleeping thread stays asleep only while it remains
//! enabled and its pending op is independent of the op just executed).
//! After a run, the deepest node with an untried, non-sleeping,
//! within-bound alternative becomes the next prefix; the just-finished
//! choice joins its sleep set (its subtree is fully covered, so any run
//! scheduling it first from that state is redundant).

use crate::rt::{self, ops_dependent, Op, StepView, Tid};
use crate::{format_schedule, Config, Failure, Mode, Report};
use std::collections::BTreeSet;
use std::sync::Arc;

type Body = Arc<dyn Fn() + Send + Sync>;

struct Node {
    chosen: Tid,
    enabled: Vec<Tid>,
    /// Pending op of every live thread at this decision point.
    ops: Vec<(Tid, Op)>,
    tried: BTreeSet<Tid>,
    sleep: BTreeSet<Tid>,
    /// Preemptions accumulated strictly before this node.
    preemptions_before: usize,
    /// Which thread executed the previous step (None at the root).
    running_before: Option<Tid>,
    /// Set when every enabled thread was asleep at creation: the whole
    /// subtree is covered elsewhere, so no alternatives are queued here.
    redundant: bool,
}

impl Node {
    fn op_of(&self, t: Tid) -> &Op {
        &self
            .ops
            .iter()
            .find(|(tid, _)| *tid == t)
            .expect("sleeping/enabled thread has a recorded op")
            .1
    }

    fn choice_preemptions(&self, t: Tid) -> usize {
        let preempt = match self.running_before {
            Some(prev) => t != prev && self.enabled.contains(&prev),
            None => false,
        };
        self.preemptions_before + preempt as usize
    }
}

pub(crate) fn run(cfg: &Config, body: Body) -> Report {
    match &cfg.mode {
        Mode::Dfs => dfs(cfg, body),
        Mode::Sample { seed, runs } => sample(cfg, body, *seed, *runs),
        Mode::Replay(sched) => replay(cfg, body, sched.clone()),
    }
}

fn fail(outcome: rt::RunOutcome) -> Option<Failure> {
    outcome.failure.map(|message| Failure {
        schedule: format_schedule(&outcome.schedule),
        message,
    })
}

fn dfs(cfg: &Config, body: Body) -> Report {
    let mut stack: Vec<Node> = Vec::new();
    let mut explored = 0usize;
    let mut bounded_out = false;

    loop {
        if explored >= cfg.max_schedules {
            return Report {
                explored_schedules: explored,
                complete: false,
                failure: None,
            };
        }
        let outcome = rt::run_once(body.clone(), cfg.max_depth, |step, view| {
            if step < stack.len() {
                return stack[step].chosen;
            }
            debug_assert_eq!(step, stack.len());
            let (preemptions_before, running_before, sleep) = match stack.last() {
                Some(parent) => {
                    let parent_op = parent.op_of(parent.chosen).clone();
                    // With sleep sets off the child inherits nothing, so
                    // backtracking enumerates every interleaving (chosen
                    // threads still retire into `sleep`, which then acts
                    // exactly like `tried`).
                    let sleep: BTreeSet<Tid> = if !cfg.sleep_sets {
                        BTreeSet::new()
                    } else {
                        parent
                            .sleep
                            .iter()
                            .copied()
                            .filter(|&u| {
                                view.enabled.contains(&u)
                                    && !ops_dependent(parent.op_of(u), &parent_op)
                            })
                            .collect()
                    };
                    (
                        parent.choice_preemptions(parent.chosen),
                        Some(parent.chosen),
                        sleep,
                    )
                }
                None => (0, None, BTreeSet::new()),
            };
            let mut node = Node {
                chosen: 0,
                enabled: view.enabled.to_vec(),
                ops: view.ops.to_vec(),
                tried: BTreeSet::new(),
                sleep,
                preemptions_before,
                running_before,
                redundant: false,
            };
            let chosen = match pick(&node, cfg.preemption_bound, &mut bounded_out) {
                Some(t) => t,
                None => {
                    // Every enabled thread is asleep (subtree covered
                    // elsewhere) or over the bound; the run must still
                    // finish, so take the first enabled thread but queue
                    // no alternatives below this point.
                    node.redundant = true;
                    node.enabled[0]
                }
            };
            node.chosen = chosen;
            node.tried.insert(chosen);
            stack.push(node);
            chosen
        });
        explored += 1;
        if let Some(failure) = fail(outcome) {
            return Report {
                explored_schedules: explored,
                complete: false,
                failure: Some(failure),
            };
        }

        // Backtrack: retire the finished choice into the sleep set and
        // move to the deepest node with a viable alternative.
        loop {
            let Some(top) = stack.last_mut() else {
                return Report {
                    explored_schedules: explored,
                    complete: !bounded_out,
                    failure: None,
                };
            };
            top.sleep.insert(top.chosen);
            let next = if top.redundant {
                None
            } else {
                pick(top, cfg.preemption_bound, &mut bounded_out)
            };
            match next {
                Some(t) => {
                    top.chosen = t;
                    top.tried.insert(t);
                    break;
                }
                None => {
                    stack.pop();
                }
            }
        }
    }
}

/// First viable choice at `node`: prefer continuing the previously running
/// thread (zero preemption cost), then ascending tid order. `None` when
/// everything enabled is tried, asleep, or over the preemption bound.
fn pick(node: &Node, bound: Option<usize>, bounded_out: &mut bool) -> Option<Tid> {
    let candidates = node
        .running_before
        .into_iter()
        .filter(|prev| node.enabled.contains(prev))
        .chain(node.enabled.iter().copied());
    for t in candidates {
        if node.tried.contains(&t) || node.sleep.contains(&t) {
            continue;
        }
        if let Some(b) = bound {
            if node.choice_preemptions(t) > b {
                // A branch exists past the bound: the search is no longer
                // exhaustive.
                *bounded_out = true;
                continue;
            }
        }
        return Some(t);
    }
    None
}

fn sample(cfg: &Config, body: Body, seed: u64, runs: usize) -> Report {
    // SplitMix64 (same generator tinyprop uses): deterministic for a given
    // seed, so sampled failures are reproducible before replay even enters.
    let mut state = seed.wrapping_add(0x9e3779b97f4a7c15);
    let mut next = move || {
        let mut z = state;
        state = state.wrapping_add(0x9e3779b97f4a7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    };
    let total = runs.min(cfg.max_schedules);
    for i in 0..total {
        let outcome = rt::run_once(body.clone(), cfg.max_depth, |_, view: &StepView<'_>| {
            view.enabled[(next() % view.enabled.len() as u64) as usize]
        });
        if let Some(failure) = fail(outcome) {
            return Report {
                explored_schedules: i + 1,
                complete: false,
                failure: Some(failure),
            };
        }
    }
    Report {
        explored_schedules: total,
        complete: false,
        failure: None,
    }
}

fn replay(cfg: &Config, body: Body, sched: Vec<Tid>) -> Report {
    let outcome = rt::run_once(body, cfg.max_depth, |step, view: &StepView<'_>| {
        match sched.get(step) {
            Some(&t) if view.enabled.contains(&t) => t,
            Some(&t) => panic!(
                "schedtest: replay diverged at step {step}: thread {t} not enabled \
                 (enabled: {:?})",
                view.enabled
            ),
            // Past the recorded prefix: continue deterministically.
            None => view.enabled[0],
        }
    });
    Report {
        explored_schedules: 1,
        complete: false,
        failure: fail(outcome),
    }
}
