//! Virtualized `std::thread` subset. Inside a model run, `spawn` registers
//! a vthread with the scheduler (thread indices are creation order — the
//! replay string's alphabet) and `join` is a scheduling point enabled once
//! the child has terminated. Outside a run everything delegates to real
//! `std::thread`, so the same call sites work in both build modes.

use crate::rt::{self, panic_message, Op, Tid};
use std::any::Any;
use std::sync::{Arc, Mutex as StdMutex};
use std::time::Duration;

/// Same shape as `std::thread::Result`.
pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

enum Inner<T> {
    Virtual {
        tid: Tid,
        slot: Arc<StdMutex<Option<Result<T>>>>,
    },
    Real(std::thread::JoinHandle<T>),
}

/// Handle to a (possibly virtual) spawned thread.
pub struct JoinHandle<T>(Inner<T>);

impl<T> JoinHandle<T> {
    /// Wait for the thread to finish and collect its result. In a model
    /// run this is a scheduling point enabled once the child terminated.
    pub fn join(self) -> Result<T> {
        match self.0 {
            Inner::Virtual { tid, slot } => {
                rt::yield_op(Op::Join(tid));
                slot.lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .take()
                    .expect("joined vthread delivered a result")
            }
            Inner::Real(h) => h.join(),
        }
    }
}

/// Spawn a thread running `f`.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match rt::current_vthread() {
        Some((gen, _)) => {
            // Two concurrent spawns race for the next thread index, so the
            // registration itself is a declared scheduling point.
            rt::yield_op(Op::Spawn);
            let slot: Arc<StdMutex<Option<Result<T>>>> = Arc::new(StdMutex::new(None));
            let slot2 = slot.clone();
            let tid = rt::register_child(
                gen,
                Box::new(move || {
                    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
                    if let Err(p) = &r {
                        // Any uncaught vthread panic fails the whole run —
                        // model tests assert inside producers/consumers.
                        rt::record_failure(
                            gen,
                            format!("spawned vthread panicked: {}", panic_message(p.as_ref())),
                        );
                    }
                    *slot2.lock().unwrap_or_else(|p| p.into_inner()) = Some(r);
                }),
            );
            JoinHandle(Inner::Virtual { tid, slot })
        }
        None => JoinHandle(Inner::Real(std::thread::spawn(f))),
    }
}

/// Builder mirroring `std::thread::Builder` (the name is recorded only on
/// the real-thread path; vthreads are identified by index).
#[derive(Default, Debug)]
pub struct Builder {
    name: Option<String>,
}

impl Builder {
    /// Create a builder with default settings.
    pub fn new() -> Self {
        Builder::default()
    }

    /// Name the thread (used by the OS-thread path only).
    pub fn name(mut self, name: String) -> Self {
        self.name = Some(name);
        self
    }

    /// Spawn the thread. The virtual path is infallible.
    pub fn spawn<F, T>(self, f: F) -> std::io::Result<JoinHandle<T>>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        if rt::current_vthread().is_some() {
            return Ok(spawn(f));
        }
        let mut b = std::thread::Builder::new();
        if let Some(n) = self.name {
            b = b.name(n);
        }
        b.spawn(f).map(|h| JoinHandle(Inner::Real(h)))
    }
}

/// Hand the baton back to the scheduler (a plain scheduling point); a real
/// `yield_now` outside a run.
pub fn yield_now() {
    if rt::current_vthread().is_some() {
        rt::yield_op(Op::Yield);
    } else {
        std::thread::yield_now();
    }
}

/// Virtual time: inside a run this is a scheduling point that advances the
/// virtual clock ([`crate::time::now`]) by `dur` without real waiting — the
/// explorer covers the orderings a real delay could select.
pub fn sleep(dur: Duration) {
    if rt::current_vthread().is_some() {
        rt::yield_op(Op::Sleep(dur.as_nanos().min(u64::MAX as u128) as u64));
    } else {
        std::thread::sleep(dur);
    }
}
