//! Deterministic schedule-exploration harness — an in-tree mini-loom.
//!
//! The paper's runtime rests on multithreaded generator proxies talking
//! through bounded blocking queues; stress tests sample the OS scheduler,
//! which is evidence, not proof. This crate provides a *cooperative*
//! model-checker in the spirit of [loom](https://docs.rs/loom): real OS
//! threads, but a virtual scheduler that owns every interleaving decision.
//! Exactly one thread runs at a time; every synchronization point
//! ([`sync::Mutex`], [`sync::Condvar`], [`sync::RwLock`], the atomics,
//! [`thread::spawn`]/[`thread::JoinHandle::join`]) hands control back to a
//! driver which picks the next thread to run. A DFS explorer enumerates
//! interleavings, pruned by DPOR-lite *sleep sets* and an optional
//! preemption bound; a deterministic PRNG sampling mode covers state spaces
//! too big to exhaust.
//!
//! # Model
//!
//! Time is virtual: `thread::sleep` is a yield point that advances a
//! per-run virtual clock ([`time::now`]) without real waiting, and timed
//! waits (`Condvar::wait_for`/`wait_until`) are modeled as *may time out* —
//! the waiter stays schedulable while waiting, and scheduling it before a
//! notify **is** the timeout branch (which also charges the consumed
//! timeout to the clock), so both outcomes are explored. No enabledness
//! ever depends on the clock — it is pure observability, so model
//! assertions should use accounting (items delivered/refunded), not
//! wall-clock arithmetic.
//! Spurious condvar wakeups are not injected. A run ends when every
//! spawned thread has terminated; a panic in any thread, or a state where
//! live threads exist but none is enabled (deadlock), fails the run.
//!
//! # Failure replay
//!
//! A failing exploration reports a compact schedule string — the chosen
//! thread index (creation order, body = `0`) at each decision point,
//! joined by `.` (e.g. `0.1.1.0.2`). Re-run the same test with
//! `SCHEDTEST_REPLAY=<string>` to execute exactly that interleaving.
//!
//! # Environment
//!
//! * `SCHEDTEST_REPLAY=<schedule>` — run only the given interleaving.
//! * `SCHEDTEST_BUDGET=<n>` — cap `max_schedules` (CI smoke budget).
//! * `SCHEDTEST_JSON=<path>` — append one JSON summary line per
//!   [`check`]/[`explore`] call (`schema`: `schedtest-v1`).
//!
//! # Integration
//!
//! The `parking_lot` shim re-exports these primitives when the `schedtest`
//! cfg is on (`RUSTFLAGS="--cfg schedtest"`), so `blockingq`, `pipes`, and
//! `exec` run unmodified under the explorer. See DESIGN.md § "Schedule
//! exploration".

mod explore;
mod rt;
pub mod sync;
pub mod thread;

/// The per-run virtual clock.
pub mod time {
    use std::time::Duration;

    /// Nanoseconds of virtual time elapsed in the current model run: the
    /// sum of every `thread::sleep` and every consumed timed-wait timeout
    /// executed so far, in schedule order. Zero outside a run. Purely
    /// observational — no enabledness depends on it.
    pub fn now() -> Duration {
        Duration::from_nanos(crate::rt::clock_ns())
    }
}

use std::sync::{Arc, Mutex as StdMutex, OnceLock};

pub use rt::Tid;

/// How the explorer walks the schedule space.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Exhaustive depth-first search with sleep-set pruning.
    Dfs,
    /// Deterministic random sampling: `runs` schedules drawn from a
    /// SplitMix64 stream seeded with `seed`.
    Sample { seed: u64, runs: usize },
    /// Execute exactly one given schedule (what `SCHEDTEST_REPLAY` sets).
    Replay(Vec<Tid>),
}

/// Exploration limits and strategy.
#[derive(Clone, Debug)]
pub struct Config {
    /// Stop after this many executed schedules (budget; `SCHEDTEST_BUDGET`
    /// lowers it further).
    pub max_schedules: usize,
    /// Fail any single run longer than this many scheduling decisions
    /// (guards against livelock in the program under test).
    pub max_depth: usize,
    /// If set, prune branches that preempt a still-enabled running thread
    /// more than this many times. `None` = unbounded (fully exhaustive).
    pub preemption_bound: Option<usize>,
    /// Sleep-set (DPOR-lite) pruning. On by default; turning it off makes
    /// the DFS enumerate every interleaving, which exists so the property
    /// suite can prove the pruned search reaches the same terminal states.
    pub sleep_sets: bool,
    /// DFS, sampling, or replay.
    pub mode: Mode,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            max_schedules: 100_000,
            max_depth: 10_000,
            preemption_bound: None,
            sleep_sets: true,
            mode: Mode::Dfs,
        }
    }
}

/// A failing interleaving: the schedule that produced it and why.
#[derive(Clone, Debug)]
pub struct Failure {
    /// Replayable schedule string (`SCHEDTEST_REPLAY` format).
    pub schedule: String,
    /// Panic message or deadlock report.
    pub message: String,
}

/// Outcome of an exploration.
#[derive(Clone, Debug)]
pub struct Report {
    /// Number of schedules actually executed.
    pub explored_schedules: usize,
    /// True iff the DFS drained the (sleep-set-reduced) space without
    /// hitting the budget or the preemption bound. Sampling and replay
    /// never claim completeness.
    pub complete: bool,
    /// First failing interleaving, if any (exploration stops at the first).
    pub failure: Option<Failure>,
}

/// Render a schedule as the compact replay string (`0.1.1.0`).
pub fn format_schedule(schedule: &[Tid]) -> String {
    let mut s = String::new();
    for (i, t) in schedule.iter().enumerate() {
        if i > 0 {
            s.push('.');
        }
        s.push_str(&t.to_string());
    }
    s
}

/// Parse a replay string back into a schedule. Errors on anything that is
/// not `.`-separated decimal thread indices.
pub fn parse_schedule(s: &str) -> Result<Vec<Tid>, String> {
    if s.is_empty() {
        return Ok(Vec::new());
    }
    s.split('.')
        .map(|tok| {
            tok.parse::<Tid>()
                .map_err(|_| format!("bad schedule token {tok:?} in {s:?}"))
        })
        .collect()
}

/// Explore all interleavings of `body` under `cfg`, honouring the
/// `SCHEDTEST_REPLAY` / `SCHEDTEST_BUDGET` / `SCHEDTEST_JSON` environment
/// and returning the [`Report`]. `name` labels the JSON summary line.
///
/// Explorations are serialized process-wide (the virtual scheduler is a
/// singleton), so concurrent `#[test]`s queue rather than interfere.
pub fn explore<F>(name: &str, cfg: &Config, body: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    let _serial = driver_lock().lock().unwrap_or_else(|p| p.into_inner());
    let mut cfg = cfg.clone();
    if let Ok(replay) = std::env::var("SCHEDTEST_REPLAY") {
        match parse_schedule(replay.trim()) {
            Ok(sched) => cfg.mode = Mode::Replay(sched),
            Err(e) => panic!("schedtest: invalid SCHEDTEST_REPLAY: {e}"),
        }
    }
    if let Ok(budget) = std::env::var("SCHEDTEST_BUDGET") {
        match budget.trim().parse::<usize>() {
            Ok(n) => cfg.max_schedules = cfg.max_schedules.min(n),
            Err(_) => panic!("schedtest: invalid SCHEDTEST_BUDGET {budget:?}"),
        }
    }
    let report = explore::run(&cfg, Arc::new(body));
    emit_json(name, &cfg, &report);
    report
}

/// [`explore`] + assert: panics with a replay recipe if any interleaving
/// fails. This is the entry point model tests use.
pub fn check<F>(name: &str, cfg: &Config, body: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    let report = explore(name, cfg, body);
    if let Some(f) = &report.failure {
        panic!(
            "schedtest: {name} failed after {n} schedule(s)\n  cause: {msg}\n  \
             replay with: SCHEDTEST_REPLAY={sched}",
            n = report.explored_schedules,
            msg = f.message,
            sched = f.schedule,
        );
    }
    report
}

fn driver_lock() -> &'static StdMutex<()> {
    static LOCK: OnceLock<StdMutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| StdMutex::new(()))
}

fn emit_json(name: &str, cfg: &Config, report: &Report) {
    let Ok(path) = std::env::var("SCHEDTEST_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let mode = match &cfg.mode {
        Mode::Dfs => "dfs",
        Mode::Sample { .. } => "sample",
        Mode::Replay(_) => "replay",
    };
    let mut esc = String::new();
    for c in name.chars() {
        match c {
            '"' | '\\' => {
                esc.push('\\');
                esc.push(c);
            }
            c if (c as u32) < 0x20 => esc.push(' '),
            c => esc.push(c),
        }
    }
    let line = format!(
        "{{\"schema\":\"schedtest-v1\",\"test\":\"{esc}\",\"mode\":\"{mode}\",\
         \"explored_schedules\":{explored},\"complete\":{complete},\"failed\":{failed}}}\n",
        explored = report.explored_schedules,
        complete = report.complete,
        failed = report.failure.is_some(),
    );
    // One write_all per line under a process-wide lock: parallel tests in
    // one binary append to the same file without tearing.
    static FILE_LOCK: OnceLock<StdMutex<()>> = OnceLock::new();
    let _g = FILE_LOCK
        .get_or_init(|| StdMutex::new(()))
        .lock()
        .unwrap_or_else(|p| p.into_inner());
    use std::io::Write;
    match std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        Ok(mut f) => {
            let _ = f.write_all(line.as_bytes());
        }
        Err(e) => eprintln!("schedtest: cannot append to SCHEDTEST_JSON={path}: {e}"),
    }
}

#[cfg(test)]
mod schedule_string_tests {
    use super::*;

    #[test]
    fn round_trips() {
        for sched in [vec![], vec![0], vec![0, 1, 1, 0, 2]] {
            assert_eq!(parse_schedule(&format_schedule(&sched)).unwrap(), sched);
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_schedule("0.x.1").is_err());
        assert!(parse_schedule("..").is_err());
    }
}
