//! Exhaustive model tests for `blockingq` under the virtual scheduler.
//!
//! Compiled only under `RUSTFLAGS="--cfg schedtest"` (the parking_lot shim
//! then re-exports the virtual primitives, so `BlockingQueue` runs
//! unmodified inside the explorer); tier-1 builds see an empty file.
//!
//! The central invariant is the refund accounting the batched transport
//! leans on (DESIGN.md § "Batched pipe transport"): over *every*
//! interleaving, `taken ++ refunded == sent` — a value handed to `put_all`
//! is either delivered to a consumer exactly once or handed back in the
//! `PutError`, never both and never dropped, no matter where `close()`
//! lands relative to the partial fills.
#![cfg(schedtest)]

use blockingq::BlockingQueue;
use schedtest::sync::{Arc, Mutex};
use schedtest::{check, thread, Config};

/// put_all vs take vs close: the refund suffix plus the consumed prefix
/// reassemble the sent batch exactly, over all interleavings.
#[test]
fn put_all_refund_accounting_under_close() {
    let report = check("blockingq_put_all_refund", &Config::default(), || {
        let q: BlockingQueue<i64> = BlockingQueue::bounded(1);
        let sent = vec![1i64, 2, 3];

        let qp = q.clone();
        let to_send = sent.clone();
        let producer = thread::spawn(move || match qp.put_all(to_send) {
            Ok(()) => Vec::new(),
            Err(blockingq::PutError(rest)) => rest,
        });

        let qc = q.clone();
        let closer = thread::spawn(move || qc.close());

        // Consumer: drain until end-of-stream (close() + empty).
        let mut taken = Vec::new();
        while let Some(v) = q.take() {
            taken.push(v);
        }

        let refunded = producer.join().unwrap();
        closer.join().unwrap();

        let mut reassembled = taken.clone();
        reassembled.extend(refunded.iter().copied());
        assert_eq!(
            reassembled, sent,
            "taken {taken:?} ++ refunded {refunded:?} must equal sent"
        );
    });
    assert!(report.complete, "DFS must drain: {report:?}");
    assert!(report.explored_schedules > 1, "{report:?}");
}

/// Same conservation with the batch consumer (`take_batch`), capacity 2.
#[test]
fn take_batch_conservation_under_close() {
    let report = check("blockingq_take_batch_close", &Config::default(), || {
        let q: BlockingQueue<i64> = BlockingQueue::bounded(2);
        let sent = vec![1i64, 2, 3, 4];

        let qp = q.clone();
        let to_send = sent.clone();
        let producer = thread::spawn(move || match qp.put_all(to_send) {
            Ok(()) => Vec::new(),
            Err(blockingq::PutError(rest)) => rest,
        });

        let qc = q.clone();
        let closer = thread::spawn(move || qc.close());

        let mut taken = Vec::new();
        while let Some(chunk) = q.take_batch(2) {
            assert!(!chunk.is_empty() && chunk.len() <= 2, "batch bound");
            taken.extend(chunk);
        }

        let refunded = producer.join().unwrap();
        closer.join().unwrap();

        let mut reassembled = taken;
        reassembled.extend(refunded);
        assert_eq!(reassembled, sent);
    });
    assert!(report.complete, "{report:?}");
}

/// Two producers, one consumer: nothing lost, nothing duplicated, and
/// each producer's stream stays FIFO in the consumed sequence.
///
/// Four threads contending on one queue lock defeat sleep-set pruning
/// (every op is dependent), so this scenario runs under a preemption
/// bound instead — the classic result that almost all concurrency bugs
/// need only a couple of preemptions applies: with ≤ 2 the schedule space
/// drains in a few thousand runs.
#[test]
fn two_producers_conserve_and_stay_fifo() {
    let cfg = Config {
        preemption_bound: Some(2),
        ..Config::default()
    };
    let report = check("blockingq_two_producers", &cfg, || {
        let q: BlockingQueue<i64> = BlockingQueue::bounded(1);

        let spawn_producer = |vals: Vec<i64>| {
            let qp = q.clone();
            thread::spawn(move || {
                for v in vals {
                    qp.put(v).expect("queue open while producing");
                }
            })
        };
        let p1 = spawn_producer(vec![1, 2]);
        let p2 = spawn_producer(vec![10]);

        let qd = q.clone();
        let drainer = thread::spawn(move || {
            let mut got = Vec::new();
            while let Some(v) = qd.take() {
                got.push(v);
            }
            got
        });

        p1.join().unwrap();
        p2.join().unwrap();
        q.close();
        let got = drainer.join().unwrap();

        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 2, 10], "conservation: {got:?}");
        let stream1: Vec<i64> = got.iter().copied().filter(|v| *v < 10).collect();
        assert_eq!(stream1, vec![1, 2], "per-producer FIFO: {got:?}");
    });
    // Bounded search: not exhaustive, but it must fit the budget (i.e.
    // actually drain at the committed bound) and find nothing.
    assert!(report.explored_schedules < 100_000, "{report:?}");
    assert!(report.failure.is_none(), "{report:?}");
}

/// Blocked putters on a full queue get their value refunded by close().
#[test]
fn close_refunds_blocked_putter() {
    let report = check("blockingq_blocked_put_refund", &Config::default(), || {
        let q: BlockingQueue<i64> = BlockingQueue::bounded(1);
        q.put(1).unwrap();

        let qp = q.clone();
        let putter = thread::spawn(move || qp.put(2));

        let qc = q.clone();
        let closer = thread::spawn(move || qc.close());

        let put_result = putter.join().unwrap();
        closer.join().unwrap();

        let mut drained = Vec::new();
        drained.extend(q.iter());
        match put_result {
            Ok(()) => drained.sort_unstable(),
            Err(blockingq::PutError(v)) => {
                drained.push(v);
                drained.sort_unstable();
            }
        }
        assert_eq!(
            drained,
            vec![1, 2],
            "1 was queued; 2 delivered xor refunded"
        );
    });
    assert!(report.complete, "{report:?}");
}

/// MVar handoff (the cell exec's Task results ride on): a put and a take
/// rendezvous correctly from any interleaving.
#[test]
fn mvar_handoff_all_interleavings() {
    let report = check("blockingq_mvar_handoff", &Config::default(), || {
        let m: blockingq::MVar<i64> = blockingq::MVar::empty();
        let m2 = m.clone();
        let h = thread::spawn(move || {
            m2.put(41);
            m2.put(42) // blocks until the first value is taken
        });
        assert_eq!(m.take(), 41);
        assert_eq!(m.take(), 42);
        h.join().unwrap();
    });
    assert!(report.complete, "{report:?}");
}

/// The explorer's enabled-set accounting must agree with a shared-counter
/// workload guarded by the real queue mutex path (sanity anchor that the
/// cfg wiring actually virtualizes blockingq's parking_lot import).
#[test]
fn queue_locks_are_virtualized() {
    let counter = Arc::new(Mutex::new(0usize));
    let c = counter.clone();
    let report = check("blockingq_cfg_wiring", &Config::default(), move || {
        let q: BlockingQueue<i64> = BlockingQueue::bounded(1);
        let qp = q.clone();
        let h = thread::spawn(move || {
            qp.put(7).unwrap();
        });
        assert_eq!(q.take(), Some(7));
        h.join().unwrap();
        *c.lock() += 1;
    });
    assert!(report.complete, "{report:?}");
    // More than one interleaving implies the queue's internal lock/condvar
    // traffic produced scheduling points — i.e. the shim swap is live.
    assert!(
        report.explored_schedules > 1,
        "queue ops produced no scheduling points — shim swap broken? {report:?}"
    );
    assert!(*counter.lock() >= 1);
}
