//! Mutation sanity checks: the explorer must *find* known races, not just
//! bless correct code.
//!
//! Each test embeds a deliberately broken miniature of a real bug class
//! from this codebase (as a self-contained copy, so the production crates
//! stay correct and these run in the plain tier-1 build with no cfg):
//!
//! * **Mutation A** — `blockingq::BlockingQueue::put_all`'s closed flag is
//!   checked only on entry, not re-checked after waking from
//!   `not_full.wait`. A close that lands while the producer is parked then
//!   lets the producer push its suffix into a closed queue after the
//!   consumer has already seen end-of-stream: values vanish, violating
//!   `taken ++ refunded == sent`.
//! * **Mutation B** — the pipe producer closes its output queue *before*
//!   flushing the trailing partial chunk (the real code flushes first,
//!   then the `CloseOnExit` guard closes). The flush hits a closed queue
//!   and the stream's tail is silently dropped.
//!
//! For each: the DFS explorer must catch the bug within 10 000
//! interleavings, the reported schedule must replay to the identical
//! failure, and the corrected twin must verify clean over the same space.

use schedtest::sync::{Arc, Condvar, Mutex};
use schedtest::{explore, parse_schedule, thread, Config, Mode};
use std::collections::VecDeque;

struct MiniState {
    buf: VecDeque<i64>,
    closed: bool,
}

/// Self-contained miniature of `blockingq::BlockingQueue`: bounded buffer,
/// close semantics, batch put with refund. Just enough surface to express
/// mutation A against.
struct MiniQueue {
    state: Mutex<MiniState>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl MiniQueue {
    fn new(capacity: usize) -> Arc<Self> {
        Arc::new(MiniQueue {
            state: Mutex::new(MiniState {
                buf: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        })
    }

    /// Batch put returning the refused suffix. `recheck_closed` is the
    /// mutation knob: `false` reproduces mutation A (closed is only
    /// examined before the first wait).
    fn put_all(&self, items: Vec<i64>, recheck_closed: bool) -> Vec<i64> {
        let mut iter = items.into_iter().peekable();
        let mut st = self.state.lock();
        let mut first = true;
        loop {
            if (first || recheck_closed) && st.closed {
                return iter.collect();
            }
            first = false;
            let mut moved = false;
            while iter.peek().is_some() && st.buf.len() < self.capacity {
                st.buf.push_back(iter.next().unwrap());
                moved = true;
            }
            if iter.peek().is_none() {
                drop(st);
                self.not_empty.notify_all();
                return Vec::new();
            }
            if moved {
                self.not_empty.notify_all();
            }
            self.not_full.wait(&mut st);
        }
    }

    fn take(&self) -> Option<i64> {
        let mut st = self.state.lock();
        loop {
            if let Some(v) = st.buf.pop_front() {
                drop(st);
                self.not_full.notify_all();
                return Some(v);
            }
            if st.closed {
                return None;
            }
            self.not_empty.wait(&mut st);
        }
    }

    fn close(&self) {
        self.state.lock().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

/// The refund-accounting scenario from `model_blockingq.rs`, parameterized
/// over the mutation knob: producer `put_all`s [1, 2, 3] into a capacity-1
/// queue, a second thread closes it, the body drains. The invariant is
/// `taken ++ refunded == sent`.
fn refund_scenario(recheck_closed: bool) {
    let q = MiniQueue::new(1);
    let sent = vec![1i64, 2, 3];

    let qp = q.clone();
    let to_send = sent.clone();
    let producer = thread::spawn(move || qp.put_all(to_send, recheck_closed));
    let qc = q.clone();
    let closer = thread::spawn(move || qc.close());

    let mut taken = Vec::new();
    while let Some(v) = q.take() {
        taken.push(v);
    }
    let refunded = producer.join().unwrap();
    closer.join().unwrap();

    let mut reassembled = taken.clone();
    reassembled.extend(refunded.iter().copied());
    assert_eq!(
        reassembled, sent,
        "taken {taken:?} ++ refunded {refunded:?} must equal sent"
    );
}

#[test]
fn mutation_a_missing_closed_recheck_is_caught_and_replays() {
    // The mutated twin: the explorer must find the lost value quickly.
    let report = explore("mutation_a_buggy", &Config::default(), || {
        refund_scenario(false)
    });
    let failure = report
        .failure
        .as_ref()
        .expect("explorer must catch the missing closed re-check");
    assert!(
        report.explored_schedules < 10_000,
        "took {} schedules to find mutation A",
        report.explored_schedules
    );
    assert!(
        failure.message.contains("must equal sent"),
        "wrong failure: {}",
        failure.message
    );

    // The reported schedule replays to the identical failure, first try.
    let replay_cfg = Config {
        mode: Mode::Replay(parse_schedule(&failure.schedule).unwrap()),
        ..Config::default()
    };
    let replayed = explore("mutation_a_replay", &replay_cfg, || refund_scenario(false));
    let refailure = replayed.failure.expect("replay must reproduce");
    assert_eq!(replayed.explored_schedules, 1);
    assert_eq!(refailure.schedule, failure.schedule);
    assert_eq!(refailure.message, failure.message);
}

#[test]
fn mutation_a_fixed_twin_verifies_clean() {
    let report = explore("mutation_a_fixed", &Config::default(), || {
        refund_scenario(true)
    });
    assert!(report.failure.is_none(), "{report:?}");
    assert!(report.complete, "{report:?}");
}

/// The pipe producer's exit path from `pipes::spawn_producer`,
/// parameterized over mutation B: stream 1..=3 crosses a capacity-2 queue
/// in chunks of 2, leaving [3] as the trailing partial chunk. The real
/// code flushes the partial chunk and *then* closes (guard drop); the
/// mutant closes first, so the flush lands on a closed queue and 3 is
/// dropped.
fn partial_flush_scenario(close_before_flush: bool) {
    let q = MiniQueue::new(2);

    let qp = q.clone();
    let producer = thread::spawn(move || {
        let mut chunk = Vec::new();
        for v in 1..=3i64 {
            chunk.push(v);
            if chunk.len() >= 2 {
                let refused = qp.put_all(std::mem::take(&mut chunk), true);
                if !refused.is_empty() {
                    return;
                }
            }
        }
        if close_before_flush {
            qp.close();
        }
        if !chunk.is_empty() {
            qp.put_all(chunk, true);
        }
        qp.close();
    });

    let mut got = Vec::new();
    while let Some(v) = q.take() {
        got.push(v);
    }
    producer.join().unwrap();
    assert_eq!(got, vec![1, 2, 3], "stream tail must survive the flush");
}

#[test]
fn mutation_b_close_before_final_flush_is_caught_and_replays() {
    let report = explore("mutation_b_buggy", &Config::default(), || {
        partial_flush_scenario(true)
    });
    let failure = report
        .failure
        .as_ref()
        .expect("explorer must catch close-before-flush");
    assert!(
        report.explored_schedules < 10_000,
        "took {} schedules to find mutation B",
        report.explored_schedules
    );
    assert!(
        failure.message.contains("stream tail"),
        "wrong failure: {}",
        failure.message
    );

    let replay_cfg = Config {
        mode: Mode::Replay(parse_schedule(&failure.schedule).unwrap()),
        ..Config::default()
    };
    let replayed = explore("mutation_b_replay", &replay_cfg, || {
        partial_flush_scenario(true)
    });
    let refailure = replayed.failure.expect("replay must reproduce");
    assert_eq!(replayed.explored_schedules, 1);
    assert_eq!(refailure.schedule, failure.schedule);
}

#[test]
fn mutation_b_fixed_twin_verifies_clean() {
    let report = explore("mutation_b_fixed", &Config::default(), || {
        partial_flush_scenario(false)
    });
    assert!(report.failure.is_none(), "{report:?}");
    assert!(report.complete, "{report:?}");
}
