//! End-to-end smoke tests for the virtual scheduler: these use the
//! schedtest API directly (no `--cfg schedtest` needed) and run in tier-1.

use schedtest::sync::atomic::{AtomicUsize, Ordering};
use schedtest::sync::{Arc, Condvar, Mutex};
use schedtest::{check, explore, thread, Config, Mode};

#[test]
fn counter_increments_survive_all_interleavings() {
    let report = check("smoke_counter", &Config::default(), || {
        let m = Arc::new(Mutex::new(0u32));
        let hs: Vec<_> = (0..2)
            .map(|_| {
                let m = m.clone();
                thread::spawn(move || {
                    let mut g = m.lock();
                    *g += 1;
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 2);
    });
    // Two threads, several scheduling points each: more than one distinct
    // interleaving must have been explored, and the DFS must finish.
    assert!(report.explored_schedules > 1, "explored {report:?}");
    assert!(report.complete, "DFS should drain: {report:?}");
}

#[test]
fn explorer_finds_lost_update_and_replay_reproduces_it() {
    // Classic unsynchronized read-modify-write: load, yield, store.
    let body = || {
        let c = Arc::new(AtomicUsize::new(0));
        let hs: Vec<_> = (0..2)
            .map(|_| {
                let c = c.clone();
                thread::spawn(move || {
                    let v = c.load(Ordering::SeqCst);
                    c.store(v + 1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(c.load(Ordering::SeqCst), 2, "lost update");
    };
    let report = explore("smoke_lost_update", &Config::default(), body);
    let failure = report.failure.expect("DFS must find the lost update");
    assert!(failure.message.contains("lost update"), "{failure:?}");

    // Replaying the reported schedule reproduces the identical failure.
    let sched = schedtest::parse_schedule(&failure.schedule).unwrap();
    let replay_cfg = Config {
        mode: Mode::Replay(sched),
        ..Config::default()
    };
    let replay = explore("smoke_lost_update_replay", &replay_cfg, body);
    assert_eq!(replay.explored_schedules, 1);
    let rf = replay.failure.expect("replay reaches the same failure");
    assert!(rf.message.contains("lost update"), "{rf:?}");
    assert_eq!(rf.schedule, failure.schedule);
}

#[test]
fn condvar_handshake_completes_under_all_interleavings() {
    let report = check("smoke_condvar", &Config::default(), || {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let waiter = thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_one();
        }
        waiter.join().unwrap();
    });
    assert!(report.complete && report.failure.is_none(), "{report:?}");
}

#[test]
fn deadlock_is_detected_and_reported() {
    // AB/BA lock ordering: some interleaving must deadlock.
    let report = explore("smoke_deadlock", &Config::default(), || {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a2, b2) = (a.clone(), b.clone());
        let h = thread::spawn(move || {
            let _ga = a2.lock();
            let _gb = b2.lock();
        });
        let _gb = b.lock();
        let _ga = a.lock();
        drop((_ga, _gb));
        let _ = h.join();
    });
    let failure = report.failure.expect("AB/BA ordering must deadlock");
    assert!(failure.message.contains("deadlock"), "{failure:?}");
    assert!(!failure.schedule.is_empty());
}

#[test]
fn timed_wait_explores_both_timeout_and_notify() {
    use std::sync::atomic::{AtomicBool, Ordering as StdOrdering};
    let saw_timeout = Arc::new(AtomicBool::new(false));
    let saw_wake = Arc::new(AtomicBool::new(false));
    let (st, sw) = (saw_timeout.clone(), saw_wake.clone());
    let report = check("smoke_timed_wait", &Config::default(), move || {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let (st, sw) = (st.clone(), sw.clone());
        let waiter = thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock();
            if !*ready {
                let res = cv.wait_for(&mut ready, std::time::Duration::from_millis(1));
                if res.timed_out() {
                    st.store(true, StdOrdering::SeqCst);
                } else {
                    sw.store(true, StdOrdering::SeqCst);
                }
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_one();
        }
        waiter.join().unwrap();
    });
    assert!(report.complete, "{report:?}");
    // Virtual time: the explorer must have visited both branches.
    assert!(
        saw_timeout.load(StdOrdering::SeqCst),
        "timeout branch never taken"
    );
    assert!(
        saw_wake.load(StdOrdering::SeqCst),
        "notify branch never taken"
    );
}

#[test]
fn virtual_clock_advances_on_sleep_and_consumed_timeouts() {
    use std::sync::atomic::{AtomicBool, Ordering as StdOrdering};
    let clock_ok = Arc::new(AtomicBool::new(true));
    let saw_timeout = Arc::new(AtomicBool::new(false));
    let (ck, st) = (clock_ok.clone(), saw_timeout.clone());
    let report = check("smoke_virtual_clock", &Config::default(), move || {
        assert_eq!(schedtest::time::now(), std::time::Duration::ZERO);
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let (ck, st) = (ck.clone(), st.clone());
        let ck2 = ck.clone();
        let waiter = thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock();
            if !*ready {
                let before = schedtest::time::now();
                let res = cv.wait_for(&mut ready, std::time::Duration::from_millis(5));
                if res.timed_out() {
                    st.store(true, StdOrdering::SeqCst);
                    // The timeout branch charges the consumed wait.
                    if schedtest::time::now() < before + std::time::Duration::from_millis(5) {
                        ck.store(false, StdOrdering::SeqCst);
                    }
                }
            }
        });
        thread::sleep(std::time::Duration::from_millis(2));
        // Sleep advanced the clock without real waiting.
        if schedtest::time::now() < std::time::Duration::from_millis(2) {
            ck2.store(false, StdOrdering::SeqCst);
        }
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_one();
        }
        waiter.join().unwrap();
    });
    assert!(report.complete, "{report:?}");
    assert!(
        saw_timeout.load(StdOrdering::SeqCst),
        "timeout branch never taken"
    );
    assert!(
        clock_ok.load(StdOrdering::SeqCst),
        "clock failed to advance"
    );
    // Outside a run the clock reads zero again.
    assert_eq!(schedtest::time::now(), std::time::Duration::ZERO);
}

#[test]
fn sampling_mode_is_deterministic() {
    let body = || {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let h = thread::spawn(move || *m2.lock() += 1);
        *m.lock() += 1;
        h.join().unwrap();
    };
    let cfg = Config {
        mode: Mode::Sample { seed: 42, runs: 25 },
        ..Config::default()
    };
    let a = explore("smoke_sample_a", &cfg, body);
    let b = explore("smoke_sample_b", &cfg, body);
    assert_eq!(a.explored_schedules, 25);
    assert_eq!(b.explored_schedules, 25);
    assert!(a.failure.is_none() && b.failure.is_none());
}

#[test]
fn fallback_outside_model_behaves_like_std() {
    // No explore() in sight: the virtual types degrade to real locks.
    let m = Mutex::new(1);
    *m.lock() += 1;
    assert_eq!(*m.lock(), 2);
    assert!(m.try_lock().is_some());
    let c = AtomicUsize::new(0);
    c.fetch_add(3, Ordering::SeqCst);
    assert_eq!(c.load(Ordering::SeqCst), 3);
    let h = thread::spawn(|| 7);
    assert_eq!(h.join().unwrap(), 7);
}
