//! Property tests for the explorer itself.
//!
//! The load-bearing property is *pruning soundness*: sleep sets are
//! allowed to skip schedules, never outcomes. On random 2-thread programs
//! over shared virtual atomics the pruned DFS must observe exactly the
//! same set of terminal states as the brute-force DFS that enumerates
//! every interleaving (`Config { sleep_sets: false }`). Brute force on
//! 3-thread programs is not enumerable (a single racy op per thread
//! already yields ~570 000 interleavings), so there the bound flips:
//! random *sampling* must never surface a terminal state the pruned DFS
//! missed.
//!
//! Alongside: replay strings round-trip through format/parse, and a
//! failure schedule reported against a randomly chosen "illegal" terminal
//! state replays to the identical failure.

use schedtest::sync::atomic::{AtomicUsize, Ordering};
use schedtest::sync::Arc;
use schedtest::{explore, format_schedule, parse_schedule, thread, Config, Mode, Tid};
use std::collections::BTreeSet;
use std::sync::Mutex as StdMutex;
use tinyprop::prelude::*;
use tinyprop::ProptestConfig;

/// One straight-line instruction over two shared cells. `Add` is a single
/// atomic RMW (one scheduling point); the `Racy*` forms are a load
/// followed by a dependent store (two scheduling points), which is what
/// makes distinct interleavings produce distinct terminal states.
#[derive(Clone, Copy, Debug)]
enum MiniOp {
    Add(usize, usize),
    RacyAdd(usize, usize),
    RacyMul(usize, usize),
}

impl MiniOp {
    fn apply(self, cells: &(AtomicUsize, AtomicUsize)) {
        let cell = |i: usize| if i == 0 { &cells.0 } else { &cells.1 };
        match self {
            MiniOp::Add(c, k) => {
                cell(c).fetch_add(k, Ordering::SeqCst);
            }
            MiniOp::RacyAdd(c, k) => {
                let v = cell(c).load(Ordering::SeqCst);
                cell(c).store(v + k, Ordering::SeqCst);
            }
            MiniOp::RacyMul(c, k) => {
                let v = cell(c).load(Ordering::SeqCst);
                cell(c).store(v * k, Ordering::SeqCst);
            }
        }
    }
}

/// A program: one op list per spawned thread.
type Program = Vec<Vec<MiniOp>>;

fn op_strategy() -> BoxedStrategy<MiniOp> {
    prop_oneof![
        (0usize..2, 1usize..4).prop_map(|(c, k)| MiniOp::Add(c, k)),
        (0usize..2, 1usize..4).prop_map(|(c, k)| MiniOp::RacyAdd(c, k)),
        (0usize..2, 2usize..4).prop_map(|(c, k)| MiniOp::RacyMul(c, k)),
    ]
    .boxed()
}

/// 2 threads of 1–2 ops each: the brute-force interleaving count tops out
/// around 3 500, so full enumeration stays cheap.
fn two_thread_program() -> BoxedStrategy<Program> {
    tinyprop::collection::vec(tinyprop::collection::vec(op_strategy(), 1..=2), 2..=2).boxed()
}

/// 3 threads of exactly 1 op each: only the pruned DFS can drain this.
fn three_thread_program() -> BoxedStrategy<Program> {
    tinyprop::collection::vec(tinyprop::collection::vec(op_strategy(), 1..=1), 3..=3).boxed()
}

/// Run `program` once inside the model and return the terminal cell
/// values after all threads joined.
fn execute(program: &Program) -> (usize, usize) {
    let cells = Arc::new((AtomicUsize::new(1), AtomicUsize::new(1)));
    let handles: Vec<_> = program
        .iter()
        .map(|ops| {
            let cells = cells.clone();
            let ops = ops.clone();
            thread::spawn(move || {
                for op in ops {
                    op.apply(&cells);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    (
        cells.0.load(Ordering::SeqCst),
        cells.1.load(Ordering::SeqCst),
    )
}

/// Explore `program` under `cfg`, collecting the terminal state of every
/// executed schedule. `require_complete` asserts the space was drained
/// (meaningless for sampling).
fn terminal_states(
    name: &str,
    cfg: &Config,
    program: &Program,
    require_complete: bool,
) -> (BTreeSet<(usize, usize)>, usize) {
    let states = Arc::new(StdMutex::new(BTreeSet::new()));
    let sink = states.clone();
    let prog = program.clone();
    let report = explore(name, cfg, move || {
        let t = execute(&prog);
        sink.lock().unwrap().insert(t);
    });
    assert!(
        report.failure.is_none(),
        "program body has no assertions, yet: {:?}",
        report.failure
    );
    if require_complete {
        assert!(
            report.complete,
            "space not drained for {program:?}: {report:?}"
        );
    }
    let set = states.lock().unwrap().clone();
    (set, report.explored_schedules)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Sleep-set pruning soundness, exact: pruned and unpruned DFS agree
    /// on the reachable terminal states, and pruning never explores more.
    #[test]
    fn pruned_dfs_reaches_same_terminal_states(program in two_thread_program()) {
        let pruned_cfg = Config::default();
        let unpruned_cfg = Config { sleep_sets: false, ..Config::default() };
        let (pruned, pruned_n) = terminal_states("props_pruned", &pruned_cfg, &program, true);
        let (unpruned, unpruned_n) =
            terminal_states("props_unpruned", &unpruned_cfg, &program, true);
        prop_assert_eq!(
            &pruned, &unpruned,
            "terminal-state sets diverged on {:?}", program
        );
        prop_assert!(
            pruned_n <= unpruned_n,
            "pruning explored more ({} > {}) on {:?}", pruned_n, unpruned_n, program
        );
    }

    /// Sleep-set pruning soundness, one-sided: on 3-thread programs random
    /// sampling never finds a terminal state the pruned DFS missed.
    #[test]
    fn sampling_never_beats_pruned_dfs(program in three_thread_program(), seed in 0u64..1 << 32) {
        let pruned_cfg = Config::default();
        let sample_cfg = Config {
            mode: Mode::Sample { seed, runs: 500 },
            ..Config::default()
        };
        let (pruned, _) = terminal_states("props_pruned3", &pruned_cfg, &program, true);
        let (sampled, _) = terminal_states("props_sampled3", &sample_cfg, &program, false);
        prop_assert!(
            sampled.is_subset(&pruned),
            "sampling found {:?} outside pruned {:?} on {:?}", sampled, pruned, program
        );
    }

    /// Replay strings round-trip: format → parse is the identity.
    #[test]
    fn replay_strings_round_trip(raw in tinyprop::collection::vec(0usize..7, 1..40)) {
        let schedule: Vec<Tid> = raw;
        let s = format_schedule(&schedule);
        prop_assert_eq!(parse_schedule(&s).unwrap(), schedule);
    }

    /// Semantic replay: declare one reachable terminal state illegal; the
    /// explorer reports a failing schedule, and replaying that schedule
    /// deterministically reproduces the same failure.
    #[test]
    fn failure_schedules_replay_to_the_same_outcome(program in two_thread_program()) {
        let (states, _) = terminal_states("props_seed", &Config::default(), &program, true);
        let illegal = *states.iter().next().unwrap();
        let run_with = |cfg: &Config| {
            let prog = program.clone();
            explore("props_illegal", cfg, move || {
                let t = execute(&prog);
                assert_ne!(t, illegal, "illegal terminal state reached");
            })
        };
        let report = run_with(&Config::default());
        let failure = report.failure.expect("a reachable state must be found");
        let replay_cfg = Config {
            mode: Mode::Replay(parse_schedule(&failure.schedule).unwrap()),
            ..Config::default()
        };
        let replayed = run_with(&replay_cfg);
        let refailure = replayed.failure.expect("replay must reproduce the failure");
        prop_assert_eq!(replayed.explored_schedules, 1);
        prop_assert_eq!(refailure.schedule, failure.schedule);
        prop_assert_eq!(refailure.message, failure.message);
    }
}
