//! Exhaustive model tests for the `exec` worker pool under the virtual
//! scheduler. Compiled only under `RUSTFLAGS="--cfg schedtest"`.
//!
//! The pool's shutdown contract is the target: `shutdown()` (and `Drop`)
//! must drain every already-queued job and join every worker, under any
//! interleaving of job submission, worker pickup, and queue close.
#![cfg(schedtest)]

use exec::ThreadPool;
use schedtest::sync::{Arc, Mutex};
use schedtest::{check, Config};

/// Shutdown drains: every job queued before `shutdown()` runs exactly
/// once, and shutdown itself returns (worker join completes) on every
/// interleaving. Two workers plus the driver make three threads on one
/// job queue, so this runs preemption-bounded.
#[test]
fn pool_shutdown_drains_all_queued_jobs() {
    let cfg = Config {
        preemption_bound: Some(2),
        ..Config::default()
    };
    let report = check("exec_pool_shutdown", &cfg, || {
        let pool = ThreadPool::new(2);
        let log = Arc::new(Mutex::new(Vec::new()));
        for i in 0..3 {
            let log = log.clone();
            pool.execute(move || log.lock().push(i));
        }
        pool.shutdown();
        let mut ran = log.lock().clone();
        ran.sort_unstable();
        assert_eq!(ran, vec![0, 1, 2], "each queued job ran exactly once");
    });
    assert!(report.explored_schedules < 100_000, "{report:?}");
    assert!(report.failure.is_none(), "{report:?}");
}

/// submit/Task::join round-trip: the MVar result handoff resolves under
/// every interleaving of worker and joiner, including a panicking job
/// whose payload must re-raise in `join` without poisoning the pool.
#[test]
fn submit_join_delivers_result_and_panic() {
    let report = check("exec_submit_join", &Config::default(), || {
        let pool = ThreadPool::new(1);
        let t = pool.submit(|| 6 * 7);
        assert_eq!(t.join(), 42);
        let boom: exec::Task<()> = pool.submit(|| panic!("boom"));
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| boom.join()));
        assert!(err.is_err(), "panic payload re-raises in join");
        // The worker survives the caught panic and keeps serving.
        assert_eq!(pool.submit(|| 5).join(), 5);
    });
    assert!(report.complete, "DFS must drain: {report:?}");
    assert!(report.explored_schedules > 1, "{report:?}");
}

/// A single-worker pool serializes jobs FIFO under every interleaving of
/// submitter and worker.
#[test]
fn single_worker_pool_is_fifo() {
    let report = check("exec_single_worker_fifo", &Config::default(), || {
        let pool = ThreadPool::new(1);
        let log = Arc::new(Mutex::new(Vec::new()));
        for i in 0..3 {
            let log = log.clone();
            pool.execute(move || log.lock().push(i));
        }
        pool.shutdown();
        assert_eq!(*log.lock(), vec![0, 1, 2], "one worker preserves order");
    });
    assert!(report.complete, "{report:?}");
}
