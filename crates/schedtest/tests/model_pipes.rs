//! Exhaustive model tests for the pipe transport (`pipes`) under the
//! virtual scheduler. Compiled only under `RUSTFLAGS="--cfg schedtest"`.
//!
//! These are the model-checked versions of the highest-value stress
//! scenarios: close-under-fire (the consumer slams the queue shut while
//! the producer is mid-flight) and restart replay (the paper's `^t`
//! refresh semantics: a restarted pipe re-evaluates the expression from
//! scratch while the abandoned producer dies quietly on its next put).
#![cfg(schedtest)]

use gde::comb::values;
use gde::{Gen, Step, Value};
use pipes::Pipe;
use schedtest::{check, Config};

fn ints(n: i64) -> impl Fn() -> gde::BoxGen + Send + Sync + 'static {
    move || Box::new(values((1..=n).map(Value::Int).collect()))
}

fn drain(g: &mut dyn Gen) -> Vec<i64> {
    let mut got = Vec::new();
    while let Step::Suspend(v) = g.resume() {
        got.push(v.as_int().expect("int stream"));
    }
    got
}

/// Close-under-fire: the consumer takes one value, closes the queue out
/// from under the producer, then drains. Over every interleaving the
/// observed values must be a clean prefix of the stream — no loss before
/// the close point, no duplication, no hang (a deadlock would fail the
/// exploration), and the producer thread always terminates.
#[test]
fn pipe_close_under_fire_yields_clean_prefix() {
    let report = check("pipes_close_under_fire", &Config::default(), || {
        let mut p = Pipe::batched(ints(3), 1, 1);
        let first = match p.resume() {
            Step::Suspend(v) => v.as_int().unwrap(),
            Step::Fail => panic!("stream of 3 failed immediately"),
        };
        assert_eq!(first, 1, "FIFO: first value is 1");
        p.queue().close();
        let rest = drain(&mut p);
        let mut seen = vec![first];
        seen.extend(rest);
        // Clean prefix: 1, 1..2, or 1..3 — contiguous from the start.
        assert!(
            seen.len() <= 3 && seen == (1..=seen.len() as i64).collect::<Vec<_>>(),
            "not a clean prefix: {seen:?}"
        );
    });
    assert!(report.complete, "DFS must drain: {report:?}");
    assert!(report.explored_schedules > 1, "{report:?}");
}

/// Restart replay: after a mid-stream restart the pipe re-produces the
/// entire stream from scratch, over interleavings of the abandoned
/// producer, the fresh producer, and the consumer. Three threads on one
/// queue defeat sleep-set pruning, so this runs preemption-bounded.
#[test]
fn pipe_restart_replays_from_scratch() {
    let cfg = Config {
        preemption_bound: Some(2),
        ..Config::default()
    };
    let report = check("pipes_restart_replay", &cfg, || {
        let mut p = Pipe::batched(ints(3), 1, 1);
        match p.resume() {
            Step::Suspend(v) => assert_eq!(v.as_int().unwrap(), 1),
            Step::Fail => panic!("stream of 3 failed immediately"),
        }
        p.restart();
        let replayed = drain(&mut p);
        assert_eq!(replayed, vec![1, 2, 3], "restart re-evaluates from scratch");
    });
    assert!(report.explored_schedules < 100_000, "{report:?}");
    assert!(report.failure.is_none(), "{report:?}");
}

/// Batched transport conservation: with capacity 2 and batch 2 the
/// producer crosses the queue in chunks; the consumer still sees the
/// exact stream in order. Five values force a trailing *partial* chunk
/// (5 = 2 + 2 + 1), covering the flush-after-generator-failure path.
#[test]
fn pipe_batched_transport_preserves_stream() {
    let report = check("pipes_batched_transport", &Config::default(), || {
        let mut p = Pipe::batched(ints(5), 2, 2);
        assert_eq!(drain(&mut p), vec![1, 2, 3, 4, 5]);
    });
    assert!(report.complete, "{report:?}");
}

/// Merge fan-in: values from concurrent sources are conserved and each
/// source's stream stays FIFO, and the merge queue always closes (last
/// producer out) so the consumer never hangs. Three threads contending on
/// one queue defeat sleep sets, so this runs preemption-bounded.
#[test]
fn merge_conserves_and_keeps_per_source_fifo() {
    let cfg = Config {
        preemption_bound: Some(2),
        ..Config::default()
    };
    let report = check("pipes_merge_fan_in", &cfg, || {
        let sources: Vec<Box<dyn Fn() -> gde::BoxGen + Send + Sync>> = vec![
            Box::new(|| Box::new(values(vec![Value::Int(1), Value::Int(2)]))),
            Box::new(|| Box::new(values(vec![Value::Int(10), Value::Int(20)]))),
        ];
        let mut m = pipes::merge(sources, 2).with_batch(1);
        let got = drain(&mut m);
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 2, 10, 20], "conservation: {got:?}");
        let a: Vec<i64> = got.iter().copied().filter(|v| *v < 10).collect();
        let b: Vec<i64> = got.iter().copied().filter(|v| *v >= 10).collect();
        assert_eq!(a, vec![1, 2], "source A FIFO: {got:?}");
        assert_eq!(b, vec![10, 20], "source B FIFO: {got:?}");
    });
    assert!(report.explored_schedules < 100_000, "{report:?}");
    assert!(report.failure.is_none(), "{report:?}");
}

/// The singleton pipe forms a future: its one result arrives exactly once
/// under every interleaving of producer and reader.
#[test]
fn spawn_future_delivers_once() {
    let report = check("pipes_spawn_future", &Config::default(), || {
        let fut = pipes::spawn_future(|| Some(Value::Int(99)));
        assert_eq!(fut.get().as_int(), Some(99));
        assert!(fut.is_set());
    });
    assert!(report.complete, "{report:?}");
}
