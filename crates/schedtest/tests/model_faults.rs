//! Fault-propagation model tests: deterministic fault injection under the
//! virtual scheduler. Compiled only under `RUSTFLAGS="--cfg schedtest"`.
//!
//! Each test arms a [`faultinj`] scenario at the top of the explored body
//! — `scenario()` replaces the registry and resets hit counters, so every
//! explored schedule sees the identical fault placement. The armed sites
//! are hit by a *single* vthread per test (pruning stays sound: hidden
//! hit-counter state never couples two threads' ops). The invariant
//! checked throughout is the fault-accounting lattice of DESIGN.md
//! § "Fault propagation and injection": over every interleaving, every
//! item is delivered exactly once, refunded, or attributed to a reported
//! [`Fault`] — never lost, never duplicated, and a panicking stage never
//! masquerades as clean end-of-stream.
#![cfg(schedtest)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use blockingq::{BlockingQueue, CloseCause, Fault};
use gde::comb::values;
use gde::{Gen, Step, Value};
use pipes::{FanPolicy, FaultPolicy, Pipe};
use schedtest::{check, thread, Config};

fn ints(n: i64) -> impl Fn() -> gde::BoxGen + Send + Sync + 'static {
    move || Box::new(values((1..=n).map(Value::Int).collect()))
}

fn drain(g: &mut dyn Gen) -> Vec<i64> {
    let mut got = Vec::new();
    while let Step::Suspend(v) = g.resume() {
        got.push(v.as_int().expect("int stream"));
    }
    got
}

/// Producer panic under the default `Propagate` policy: over every
/// interleaving the consumer sees the clean prefix, then a propagation
/// panic — never a clean end-of-stream — and the pipe records the fault
/// with the injection site in its message.
#[test]
fn injected_producer_panic_propagates_not_clean_eos() {
    let report = check("faults_propagate", &Config::default(), || {
        // Hit #1 precedes value 1; the panic lands before value 2.
        faultinj::scenario("pipes.producer.resume:panic@2");
        let mut p = Pipe::batched(ints(3), 1, 1);
        match p.resume() {
            Step::Suspend(v) => assert_eq!(v.as_int(), Some(1)),
            Step::Fail => panic!("clean prefix lost"),
        }
        let boom = catch_unwind(AssertUnwindSafe(|| p.resume()));
        assert!(boom.is_err(), "fault must propagate, not end cleanly");
        let fault = p.fault().expect("fault recorded");
        assert!(
            fault.message().contains("pipes.producer.resume"),
            "fault names the injection site: {fault}"
        );
        // A caught propagation is sticky: the pipe stays failed.
        assert_eq!(p.resume(), Step::Fail);
        faultinj::disarm_all();
    });
    assert!(report.complete, "DFS must drain: {report:?}");
    assert!(report.explored_schedules > 1, "{report:?}");
}

/// `Retry` replays the stream bitwise after an injected producer panic,
/// over every interleaving of the dying producer, its replacement, and
/// the consumer; the virtual clock is charged for the backoff.
#[test]
fn injected_panic_retry_replays_bitwise_and_charges_backoff() {
    let cfg = Config {
        preemption_bound: Some(2),
        ..Config::default()
    };
    let report = check("faults_retry_replay", &cfg, || {
        faultinj::scenario("pipes.producer.resume:panic@2");
        let backoff = Duration::from_millis(1);
        let mut p =
            Pipe::batched(ints(3), 1, 1).with_policy(FaultPolicy::Retry { limit: 1, backoff });
        assert_eq!(drain(&mut p), vec![1, 2, 3], "bitwise replay");
        assert_eq!(p.retries(), 1, "exactly one respawn");
        let fault = p.fault().expect("retried fault stays inspectable");
        assert!(
            fault.message().contains("pipes.producer.resume"),
            "fault names the injection site: {fault}"
        );
        assert!(
            schedtest::time::now() >= backoff,
            "retry backoff must run on the virtual clock"
        );
        faultinj::disarm_all();
    });
    assert!(report.explored_schedules < 100_000, "{report:?}");
    assert!(report.failure.is_none(), "{report:?}");
}

/// `close_with(Failed)` against a mid-flight `put_all`: conservation
/// (taken ++ refunded == sent) holds over every interleaving, and the
/// cause read by the drained consumer is exactly the injected fault —
/// first close wins, the producer's implicit path never overwrites it.
#[test]
fn close_with_failed_conserves_items_and_keeps_cause() {
    let report = check("faults_close_with", &Config::default(), || {
        let q: BlockingQueue<i64> = BlockingQueue::bounded(1);
        let sent = vec![1i64, 2, 3];

        let qp = q.clone();
        let to_send = sent.clone();
        let producer = thread::spawn(move || match qp.put_all(to_send) {
            Ok(()) => Vec::new(),
            Err(blockingq::PutError(rest)) => rest,
        });

        let fault = Fault::from_panic("model-close", &"injected close");
        q.close_with(CloseCause::Failed(fault));

        let mut taken = Vec::new();
        let cause = loop {
            match q.take_with_cause() {
                Ok(v) => taken.push(v),
                Err(cause) => break cause,
            }
        };
        let refunded = producer.join().unwrap();

        let mut reassembled = taken.clone();
        reassembled.extend(refunded.iter().copied());
        assert_eq!(
            reassembled, sent,
            "taken {taken:?} ++ refunded {refunded:?} must equal sent"
        );
        let fault = cause.fault().expect("cause must stay Failed");
        assert_eq!(fault.stage(), "model-close");
    });
    assert!(report.complete, "{report:?}");
    assert!(report.explored_schedules > 1, "{report:?}");
}

/// Timeout-vs-put race: across every interleaving the item is delivered
/// exactly once — by the timed take or by the follow-up — and a take with
/// the item already enqueued never reports `TimedOut` (the post-wait
/// recheck closes ROADMAP PR 8's open item).
#[test]
fn take_timeout_race_never_loses_or_duplicates_the_item() {
    let report = check("faults_take_timeout", &Config::default(), || {
        // Already-enqueued: even a zero timeout must deliver, not expire.
        let warm: BlockingQueue<i64> = BlockingQueue::bounded(1);
        warm.put(7).unwrap();
        assert_eq!(
            warm.take_timeout(Duration::ZERO),
            Ok(Some(7)),
            "an enqueued item beats the deadline"
        );

        // Racing put: delivered via the timed take xor left for later.
        let q: BlockingQueue<i64> = BlockingQueue::bounded(1);
        let qp = q.clone();
        let putter = thread::spawn(move || qp.put(7).expect("queue open"));
        let timed = q.take_timeout(Duration::from_millis(1));
        putter.join().unwrap();
        let leftover = q.try_take().ok();
        let seen: Vec<i64> = match timed {
            Ok(Some(v)) => Some(v).into_iter().chain(leftover).collect(),
            Ok(None) => panic!("queue was never closed"),
            Err(blockingq::TimedOut) => leftover.into_iter().collect(),
        };
        assert_eq!(seen, vec![7], "timed {timed:?} / leftover: exactly once");
    });
    assert!(report.complete, "{report:?}");
    assert!(report.explored_schedules > 1, "{report:?}");
}

/// An injected panic in a fire-and-forget pool job is contained: the
/// worker survives, later jobs still run, and the containment counter
/// attributes exactly the injected fault.
#[test]
fn injected_worker_panic_is_contained_and_counted() {
    let report = check("faults_exec_contained", &Config::default(), || {
        faultinj::scenario("exec.worker.job:panic@1");
        let pool = exec::ThreadPool::new(1);
        let victim_ran = blockingq::MVar::empty();
        let v2 = victim_ran.clone();
        // Hit #1 fires before the job body: this job is the casualty.
        pool.execute(move || v2.put(true));
        let done = blockingq::MVar::empty();
        let d2 = done.clone();
        pool.execute(move || d2.put(42i64));
        assert_eq!(done.take(), 42, "the worker survived the panic");
        assert_eq!(pool.contained_panics(), 1, "exactly one containment");
        assert!(
            !victim_ran.is_full(),
            "the injected panic preempted the job"
        );
        pool.shutdown();
        faultinj::disarm_all();
    });
    assert!(report.complete, "{report:?}");
    assert!(report.explored_schedules > 1, "{report:?}");
}

/// Fail-fast fan-in: an injected source panic surfaces as a propagation
/// panic on the consumer with the fault recorded — never a clean EOS.
#[test]
fn injected_merge_source_panic_fails_fast() {
    let report = check("faults_merge_fail_fast", &Config::default(), || {
        faultinj::scenario("pipes.merge.resume:panic@1");
        let sources: Vec<Box<dyn Fn() -> gde::BoxGen + Send + Sync>> = vec![Box::new(ints(2))];
        let mut m = pipes::merge(sources, 1)
            .with_batch(1)
            .with_policy(FanPolicy::FailFast);
        let boom = catch_unwind(AssertUnwindSafe(|| drain(&mut m)));
        assert!(boom.is_err(), "fault must propagate, not end cleanly");
        let fault = m.fault().expect("fault recorded");
        assert!(
            fault.message().contains("pipes.merge.resume"),
            "fault names the injection site: {fault}"
        );
        faultinj::disarm_all();
    });
    assert!(report.complete, "{report:?}");
}

/// Degrading fan-in: with one faulted and one clean source, every
/// interleaving drops exactly the faulted source, keeps the survivor's
/// full FIFO stream, and reaches a *clean* end-of-stream.
#[test]
fn injected_merge_source_panic_degrades_and_keeps_survivor() {
    let cfg = Config {
        preemption_bound: Some(2),
        ..Config::default()
    };
    let report = check("faults_merge_degrade", &cfg, || {
        // Both sources hit the shared site; whichever draws hit #1 dies.
        // The assertions below are attribution-independent.
        faultinj::scenario("pipes.merge.resume:panic@1");
        let sources: Vec<Box<dyn Fn() -> gde::BoxGen + Send + Sync>> = vec![
            Box::new(|| Box::new(values(vec![Value::Int(1), Value::Int(2)]))),
            Box::new(|| Box::new(values(vec![Value::Int(10), Value::Int(20)]))),
        ];
        let mut m = pipes::merge(sources, 2)
            .with_batch(1)
            .with_policy(FanPolicy::Degrade);
        let got = drain(&mut m); // must terminate cleanly: Degrade
        assert_eq!(m.degraded_sources(), 1, "exactly one source dropped");
        let a: Vec<i64> = got.iter().copied().filter(|v| *v < 10).collect();
        let b: Vec<i64> = got.iter().copied().filter(|v| *v >= 10).collect();
        let prefix_of = |s: &[i64], full: &[i64]| s == &full[..s.len().min(full.len())];
        assert!(prefix_of(&a, &[1, 2]), "source A FIFO prefix: {got:?}");
        assert!(prefix_of(&b, &[10, 20]), "source B FIFO prefix: {got:?}");
        assert!(
            a.len() == 2 || b.len() == 2,
            "the surviving source delivers in full: {got:?}"
        );
        faultinj::disarm_all();
    });
    assert!(report.explored_schedules < 100_000, "{report:?}");
    assert!(report.failure.is_none(), "{report:?}");
}

/// An injected panic inside `spawn_future` fails the future — getters see
/// the fault (non-panicking via `try_result`) instead of hanging.
#[test]
fn injected_future_panic_fails_the_future() {
    let report = check("faults_future", &Config::default(), || {
        faultinj::scenario("pipes.future.run:panic@1");
        let fut = pipes::spawn_future(|| Some(Value::Int(99)));
        let boom = catch_unwind(AssertUnwindSafe(|| fut.get()));
        assert!(boom.is_err(), "get() re-raises the fault");
        let fault = fut
            .try_result()
            .expect("resolved")
            .expect_err("must be failed");
        assert!(
            fault.message().contains("pipes.future.run"),
            "fault names the injection site: {fault}"
        );
        faultinj::disarm_all();
    });
    assert!(report.complete, "{report:?}");
}
