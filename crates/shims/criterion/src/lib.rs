//! Hermetic in-tree shim for [`criterion`](https://docs.rs/criterion).
//!
//! The workspace builds with `--offline` and zero registry dependencies
//! (DESIGN.md § "Hermetic build"), so the benchmark API surface the six
//! bench binaries use — [`Criterion`], [`BenchmarkGroup`], [`Bencher`],
//! [`BenchmarkId`], [`criterion_group!`], [`criterion_main!`] — is
//! reimplemented over a tiny measurement loop:
//!
//! 1. **calibrate**: time single calls until the per-sample iteration
//!    count makes a sample take ≥ ~2 ms (so cheap closures aren't pure
//!    timer noise);
//! 2. **warm up** for a fixed budget (default 300 ms, overridable with
//!    `TINYBENCH_WARMUP_MS`);
//! 3. **sample** `sample_size` times (default 20, `group.sample_size(n)`
//!    honored, `TINYBENCH_SAMPLES` overrides) and report median, mean,
//!    and standard deviation.
//!
//! No statistical regression analysis, HTML reports, or plotting — just
//! numbers on stdout, which is what the ablation studies need offline.
//! CLI compatibility: the harness accepts and ignores `--bench`,
//! `--test`, and a filter substring (so `cargo bench foo` filters).

use std::fmt;
use std::hint::black_box as core_black_box;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` keeps working (criterion's own is
/// deprecated in favor of `std::hint::black_box`, which we alias).
pub fn black_box<T>(x: T) -> T {
    core_black_box(x)
}

// ---------------------------------------------------------------------------
// Identifiers
// ---------------------------------------------------------------------------

/// A benchmark identifier: function name and/or parameter rendering.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Just the parameter (for single-function sweeps).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

// ---------------------------------------------------------------------------
// Measurement core
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Debug)]
struct BenchConfig {
    sample_size: usize,
    warmup: Duration,
    /// Target wall time per sample (drives iteration calibration).
    sample_target: Duration,
}

impl Default for BenchConfig {
    fn default() -> Self {
        let env_ms = |k: &str, default: u64| {
            std::env::var(k)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        };
        BenchConfig {
            sample_size: std::env::var("TINYBENCH_SAMPLES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(20),
            warmup: Duration::from_millis(env_ms("TINYBENCH_WARMUP_MS", 300)),
            sample_target: Duration::from_millis(env_ms("TINYBENCH_SAMPLE_MS", 2)),
        }
    }
}

/// Measurement statistics for one benchmark.
#[derive(Clone, Copy, Debug)]
struct Stats {
    median: Duration,
    mean: Duration,
    stddev: Duration,
    iters_per_sample: u64,
    samples: usize,
}

/// Passed to the closure given to `bench_function`/`bench_with_input`;
/// its [`Bencher::iter`] runs the measurement loop.
pub struct Bencher<'a> {
    config: BenchConfig,
    result: &'a mut Option<Stats>,
}

impl Bencher<'_> {
    /// Measure `routine`: calibrate, warm up, then sample. The routine's
    /// return value is passed through [`black_box`] so the optimizer
    /// cannot delete the work.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibration: find an iteration count giving samples >= target.
        let mut iters: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                core_black_box(routine());
            }
            let elapsed = t0.elapsed();
            if elapsed >= self.config.sample_target || iters >= 1 << 20 {
                break;
            }
            // Aim straight at the target with a 2x safety margin.
            let scale = (self.config.sample_target.as_secs_f64() / elapsed.as_secs_f64().max(1e-9))
                .ceil() as u64;
            iters = (iters * scale.clamp(2, 1024)).min(1 << 20);
        }

        // Warmup: run for the configured budget at the calibrated count.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.config.warmup {
            for _ in 0..iters {
                core_black_box(routine());
            }
        }

        // Sampling.
        let mut samples: Vec<Duration> = Vec::with_capacity(self.config.sample_size);
        for _ in 0..self.config.sample_size.max(1) {
            let t0 = Instant::now();
            for _ in 0..iters {
                core_black_box(routine());
            }
            samples.push(t0.elapsed() / iters as u32);
        }
        samples.sort();
        let median = samples[samples.len() / 2];
        let mean_ns =
            samples.iter().map(|d| d.as_nanos() as f64).sum::<f64>() / samples.len() as f64;
        let var = samples
            .iter()
            .map(|d| {
                let x = d.as_nanos() as f64 - mean_ns;
                x * x
            })
            .sum::<f64>()
            / samples.len() as f64;
        *self.result = Some(Stats {
            median,
            mean: Duration::from_nanos(mean_ns as u64),
            stddev: Duration::from_nanos(var.sqrt() as u64),
            iters_per_sample: iters,
            samples: samples.len(),
        });
    }

    /// criterion's batched iteration (setup excluded from timing is NOT
    /// honored here: setup runs inside the timed region, which is
    /// acceptable for the cheap setups this workspace uses).
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        self.iter(move || routine(setup()));
    }
}

/// Batch sizing hint (accepted for API compatibility; unused).
#[derive(Clone, Copy, Debug, Default)]
pub enum BatchSize {
    #[default]
    SmallInput,
    LargeInput,
    PerIteration,
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

fn run_bench(
    full_id: &str,
    filter: Option<&str>,
    config: BenchConfig,
    f: impl FnOnce(&mut Bencher),
) {
    if let Some(pat) = filter {
        if !full_id.contains(pat) {
            return;
        }
    }
    let mut result = None;
    let mut b = Bencher {
        config,
        result: &mut result,
    };
    f(&mut b);
    match result {
        Some(s) => println!(
            "{full_id:<60} median {:>12}  mean {:>12}  σ {:>10}  ({} samples × {} iters)",
            fmt_duration(s.median),
            fmt_duration(s.mean),
            fmt_duration(s.stddev),
            s.samples,
            s.iters_per_sample,
        ),
        None => println!("{full_id:<60} (no measurement: Bencher::iter never called)"),
    }
}

// ---------------------------------------------------------------------------
// Criterion / BenchmarkGroup
// ---------------------------------------------------------------------------

/// The top-level harness handle handed to `criterion_group!` targets.
pub struct Criterion {
    config: BenchConfig,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Mimic criterion's CLI just enough for `cargo bench [filter]`:
        // ignore harness flags, treat the first free argument as a
        // substring filter.
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" | "--test" | "--profile-time" | "--noplot" | "--quiet" => {}
                s if s.starts_with('-') => {}
                s => filter = Some(s.to_string()),
            }
        }
        Criterion {
            config: BenchConfig::default(),
            filter,
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        self.group_internal(name.into())
    }

    /// Benchmark a single function.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        run_bench(&id.into().id, self.filter.as_deref(), self.config, f);
        self
    }

    /// Override the number of samples taken per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.config.sample_size = n;
        self
    }

    /// Override the warm-up time per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.config.warmup = d;
        self
    }

    /// Accepted for API compatibility; measurement time is derived from
    /// sample count × per-sample target here.
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    config: BenchConfig,
    filter: Option<String>,
    // Lifetime kept so the API matches criterion's `BenchmarkGroup<'_, M>`.
    _marker_placeholder: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Override the number of samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n;
        self
    }

    /// Override the warm-up time for this group.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.config.warmup = d;
        self
    }

    /// Accepted for API compatibility; ignored (see [`Criterion::measurement_time`]).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmark `f` under `group_name/id`.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        run_bench(&full, self.filter.as_deref(), self.config, f);
        self
    }

    /// Benchmark `f` with an input value under `group_name/id`.
    pub fn bench_with_input<I: ?Sized, F: FnOnce(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        run_bench(&full, self.filter.as_deref(), self.config, |b| f(b, input));
        self
    }

    /// End the group (prints nothing extra; criterion compatibility).
    pub fn finish(self) {}
}

// Manual constructor because of the PhantomData field.
impl Criterion {
    fn group_internal(&self, name: String) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name,
            config: self.config,
            filter: self.filter.clone(),
            _marker_placeholder: std::marker::PhantomData,
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Define a group-runner function invoking each target with a fresh
/// [`Criterion`] handle.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $( $target(&mut c); )+
        }
    };
}

/// Define `main()` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let config = BenchConfig {
            sample_size: 5,
            warmup: Duration::from_millis(5),
            sample_target: Duration::from_micros(200),
        };
        let mut result = None;
        let mut b = Bencher {
            config,
            result: &mut result,
        };
        b.iter(|| {
            let mut s = 0u64;
            for i in 0..100 {
                s = s.wrapping_add(black_box(i));
            }
            s
        });
        let stats = result.expect("iter stores stats");
        assert_eq!(stats.samples, 5);
        assert!(stats.iters_per_sample >= 1);
        assert!(stats.median > Duration::ZERO);
    }

    #[test]
    fn group_runs_benchmarks_without_panic() {
        let mut c = Criterion {
            config: BenchConfig {
                sample_size: 3,
                warmup: Duration::from_millis(1),
                sample_target: Duration::from_micros(100),
            },
            filter: None,
        };
        let mut group = c.benchmark_group("shim-self-test");
        group.sample_size(3);
        for n in [10u64, 100] {
            group.bench_with_input(BenchmarkId::new("sum", n), &n, |b, &n| {
                b.iter(|| (0..n).sum::<u64>())
            });
        }
        group.bench_function("trivial", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
        c.bench_function("top-level", |b| b.iter(|| black_box(2 * 2)));
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            config: BenchConfig {
                sample_size: 2,
                warmup: Duration::from_millis(1),
                sample_target: Duration::from_micros(50),
            },
            filter: Some("does-not-match-anything".into()),
        };
        // Would hang noticeably if not filtered; closure panics if run.
        c.bench_function("skipped", |_b| panic!("filter failed to skip"));
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::new("f", 32).id, "f/32");
        assert_eq!(BenchmarkId::from_parameter(8).id, "8");
        assert_eq!(BenchmarkId::from("plain").id, "plain");
    }
}
