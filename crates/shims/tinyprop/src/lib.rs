//! **tinyprop** — a minimal, hermetic property-testing harness.
//!
//! The four property suites in this workspace were written against
//! [proptest](https://docs.rs/proptest); the hermetic-build rule
//! (DESIGN.md § "Hermetic build") forbids registry dependencies, so this
//! crate reimplements the subset those suites use:
//!
//! * **strategies**: integer ranges, `any::<T>()`, [`Just`], tuples,
//!   [`collection::vec`], [`option::of`], regex-subset string patterns
//!   (`"[a-g][a-g0-9]{0,5}"`), weighted [`prop_oneof!`], and the
//!   combinators `prop_map` / `prop_filter` / `prop_recursive`;
//! * **integrated shrinking**: every strategy produces a [`ValueTree`]
//!   that can `simplify`/`complicate` (proptest's architecture), so
//!   failures shrink through maps and filters — integers binary-search
//!   toward zero, vecs drop and then shrink elements, strings shorten;
//! * **macros**: [`proptest!`] (including `#![proptest_config(...)]`),
//!   [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//!   [`prop_assume!`], [`prop_oneof!`].
//!
//! Deliberately *not* reproduced: persistence of failing cases
//! (`.proptest-regressions`), `prop_flat_map`, `Arbitrary` derive, and
//! adaptive case budgeting. Runs are deterministic per test name; set
//! `TINYPROP_SEED` to change the base seed and `TINYPROP_CASES` to
//! override the default case count (256).

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

pub mod strategy;

pub use strategy::{
    any, collection, option, Arbitrary, BoxedStrategy, Just, Strategy, Union, ValueTree,
};

// ---------------------------------------------------------------------------
// Deterministic RNG (SplitMix64: tiny, seedable, passes the tests' needs)
// ---------------------------------------------------------------------------

/// The harness's internal random source (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, n)`; `n` must be nonzero. (128-bit modulo:
    /// the 2^-64 bias is irrelevant for test-case generation.)
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
        (wide % n as u128) as u64
    }

    /// Uniform draw from the inclusive `[lo, hi]` interval (fits i128).
    pub fn int_in(&mut self, lo: i128, hi: i128) -> i128 {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u128 + 1;
        if span == 0 {
            // Full 2^128 span cannot occur for the types we expose
            // (values are at most 64-bit), but stay total anyway.
            return self.next_u64() as i128;
        }
        let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
        lo + (wide % span) as i128
    }
}

// ---------------------------------------------------------------------------
// Config and case results
// ---------------------------------------------------------------------------

/// Knobs for a property run (the proptest-compatible subset).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the property to pass.
    pub cases: u32,
    /// Cap on `prop_assume!` rejections across the whole run.
    pub max_global_rejects: u32,
    /// Cap on shrink steps after a failure is found.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("TINYPROP_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(256);
        ProptestConfig {
            cases,
            max_global_rejects: 4096,
            max_shrink_iters: 4096,
        }
    }
}

impl ProptestConfig {
    /// A config that runs exactly `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// Why a single test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The property does not hold; shrink and report.
    Fail(String),
    /// The input was rejected by `prop_assume!`; draw a fresh one.
    Reject(String),
}

impl TestCaseError {
    /// Construct a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Construct a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "property failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
        }
    }
}

/// Result type the body of a `proptest!` test evaluates to.
pub type TestCaseResult = Result<(), TestCaseError>;

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

enum Outcome {
    Pass,
    Reject,
    Fail(String),
}

fn run_once<V>(test: &impl Fn(V) -> TestCaseResult, value: V) -> Outcome {
    match catch_unwind(AssertUnwindSafe(|| test(value))) {
        Ok(Ok(())) => Outcome::Pass,
        Ok(Err(TestCaseError::Reject(_))) => Outcome::Reject,
        Ok(Err(TestCaseError::Fail(m))) => Outcome::Fail(m),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "test panicked (non-string payload)".to_string());
            Outcome::Fail(format!("panic: {msg}"))
        }
    }
}

/// FNV-1a, used to derive a per-test base seed from the test name.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Drive one property: generate `config.cases` inputs from `strategy`,
/// run `test` on each, and on failure shrink to a minimal counterexample
/// and panic with a report. This is what the [`proptest!`] macro expands
/// to; call it directly for programmatic use.
pub fn run_prop<S: Strategy>(
    config: ProptestConfig,
    name: &str,
    strategy: S,
    test: impl Fn(S::Value) -> TestCaseResult,
) {
    let base_seed = std::env::var("TINYPROP_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x0001_CED0_C0DE)
        ^ fnv1a(name);

    let mut passed = 0u32;
    let mut rejects = 0u32;
    let mut attempt = 0u64;
    while passed < config.cases {
        attempt += 1;
        // Each attempt draws an independent deterministic stream.
        let mut rng = TestRng::new(base_seed.wrapping_add(attempt.wrapping_mul(0x9E37_79B9)));
        let mut tree = strategy.new_tree(&mut rng);
        match run_once(&test, tree.current()) {
            Outcome::Pass => passed += 1,
            Outcome::Reject => {
                rejects += 1;
                if rejects > config.max_global_rejects {
                    panic!(
                        "tinyprop: `{name}` rejected too many inputs \
                         ({rejects} rejects for {passed} passes); weaken prop_assume! \
                         or generate inputs that satisfy it directly"
                    );
                }
            }
            Outcome::Fail(first_msg) => {
                let original = tree.current();
                let (minimal, msg, steps) =
                    shrink(&mut *tree, &test, first_msg, config.max_shrink_iters);
                panic!(
                    "tinyprop: property `{name}` failed after {passed} passing case(s)\n\
                     \x20 message:  {msg}\n\
                     \x20 minimal:  {minimal:?}\n\
                     \x20 original: {original:?}  ({steps} shrink steps)\n\
                     \x20 reproduce with: TINYPROP_SEED={}",
                    base_seed ^ fnv1a(name), // report the pre-mix env value
                );
            }
        }
    }
}

/// Standard simplify/complicate shrink loop (proptest's algorithm):
/// binary-search toward simplicity while the failure persists, backing up
/// whenever a simplification makes the test pass.
fn shrink<V: Clone + fmt::Debug + 'static>(
    tree: &mut dyn ValueTree<Value = V>,
    test: &impl Fn(V) -> TestCaseResult,
    first_msg: String,
    max_iters: u32,
) -> (V, String, u32) {
    let mut best = (tree.current(), first_msg);
    let mut iters = 0u32;
    let mut accepted = 0u32;
    'outer: while iters < max_iters {
        iters += 1;
        if !tree.simplify() {
            break;
        }
        match run_once(test, tree.current()) {
            Outcome::Fail(m) => {
                accepted += 1;
                best = (tree.current(), m);
            }
            Outcome::Pass | Outcome::Reject => {
                // Simplified too far: walk back toward the failure.
                loop {
                    iters += 1;
                    if iters >= max_iters || !tree.complicate() {
                        break 'outer;
                    }
                    if let Outcome::Fail(m) = run_once(test, tree.current()) {
                        accepted += 1;
                        best = (tree.current(), m);
                        break;
                    }
                }
            }
        }
    }
    (best.0, best.1, accepted)
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// proptest-compatible test harness macro. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of
/// `#[test] fn name(binding in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__tinyprop_tests! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__tinyprop_tests! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __tinyprop_tests {
    (config = ($cfg:expr);
     $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let strategy = ( $($strat,)+ );
                $crate::run_prop(config, stringify!($name), strategy, |( $($arg,)+ )| {
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                });
            }
        )*
    };
}

/// Fail the current case (shrinkable) unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} == {:?}`", l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} == {:?}`: {}", l, r, format!($($fmt)*)
            )));
        }
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} != {:?}`",
                l, r
            )));
        }
    }};
}

/// Discard the current case (not counted as pass or fail) unless `cond`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

/// Choose among strategies, optionally weighted (`w => strategy`). All
/// arms must produce the same `Value` type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $( ($weight as u32, $crate::Strategy::boxed($arm)) ),+
        ])
    };
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $( (1u32, $crate::Strategy::boxed($arm)) ),+
        ])
    };
}

/// Everything a `proptest`-style test file needs, importable as
/// `use tinyprop::prelude::*;`. Includes `prop` as an alias for this
/// crate so `prop::collection::vec(...)` paths keep working.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

// ---------------------------------------------------------------------------
// Self-tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn passing_property_runs_to_completion() {
        run_prop(
            ProptestConfig::with_cases(64),
            "commutes",
            (any::<i32>(), any::<i32>()),
            |(a, b)| {
                prop_assert_eq!(a as i64 + b as i64, b as i64 + a as i64);
                Ok(())
            },
        );
    }

    #[test]
    fn failing_property_shrinks_to_threshold() {
        // Property "v < 100" fails for v >= 100; the minimal counterexample
        // is exactly 100, and shrinking must find it from wherever the
        // first failure lands in [0, 10000).
        let res = catch_unwind(|| {
            run_prop(
                ProptestConfig::with_cases(256),
                "lt100",
                (0i64..10_000,),
                |(v,)| {
                    prop_assert!(v < 100);
                    Ok(())
                },
            );
        });
        let msg = match res {
            Ok(()) => panic!("property unexpectedly passed"),
            Err(p) => *p.downcast::<String>().expect("string panic payload"),
        };
        assert!(
            msg.contains("minimal:  (100,)"),
            "did not shrink to 100: {msg}"
        );
    }

    #[test]
    fn vec_failures_shrink_small() {
        // "no element is >= 50": minimal counterexample is the singleton
        // [50]. Requires both length- and element-shrinking to cooperate.
        let res = catch_unwind(|| {
            run_prop(
                ProptestConfig::with_cases(256),
                "vec50",
                (collection::vec(0i64..1000, 0..20),),
                |(xs,)| {
                    prop_assert!(xs.iter().all(|&x| x < 50));
                    Ok(())
                },
            );
        });
        let msg = match res {
            Ok(()) => panic!("property unexpectedly passed"),
            Err(p) => *p.downcast::<String>().expect("string panic payload"),
        };
        assert!(
            msg.contains("minimal:  ([50],)"),
            "did not shrink to [50]: {msg}"
        );
    }

    #[test]
    fn rejects_do_not_count_as_cases() {
        let mut executed = 0u32;
        let counter = std::sync::Mutex::new(&mut executed);
        run_prop(
            ProptestConfig::with_cases(16),
            "assume",
            (0i64..100,),
            move |(v,)| {
                **counter.lock().unwrap_or_else(|e| e.into_inner()) += 1;
                prop_assume!(v % 2 == 0);
                prop_assert!(v % 2 == 0);
                Ok(())
            },
        );
    }

    #[test]
    fn panics_are_treated_as_failures_and_shrunk() {
        let res = catch_unwind(|| {
            run_prop(
                ProptestConfig::with_cases(128),
                "panics",
                (0i64..1000,),
                |(v,)| {
                    assert!(v < 10, "boom at {v}");
                    Ok(())
                },
            );
        });
        let msg = match res {
            Ok(()) => panic!("property unexpectedly passed"),
            Err(p) => *p.downcast::<String>().expect("string panic payload"),
        };
        assert!(
            msg.contains("minimal:  (10,)"),
            "did not shrink panic to 10: {msg}"
        );
    }

    proptest! {
        #[test]
        fn macro_form_works(a in 0u32..10, b in 0u32..10) {
            prop_assert!(a < 10 && b < 10);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(17))]

        #[test]
        fn macro_config_form_works(v in any::<u16>()) {
            let _ = v;
        }
    }
}
