//! Strategies (value generators) and their integrated-shrinking
//! [`ValueTree`]s.
//!
//! The architecture mirrors proptest: a [`Strategy`] is a *recipe* that,
//! given randomness, produces a [`ValueTree`] — a current value plus the
//! ability to `simplify` (propose a simpler value) and `complicate`
//! (retreat toward the last known-failing value after simplifying too
//! far). The runner's shrink loop in `lib.rs` drives those two methods;
//! every tree here is written so the simplify/complicate dialogue makes
//! monotonic progress and terminates.

use crate::TestRng;
use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A generated value with integrated shrinking.
pub trait ValueTree {
    /// The type of value this tree holds.
    type Value: Clone + fmt::Debug + 'static;

    /// The value currently proposed.
    fn current(&self) -> Self::Value;

    /// Propose a simpler value. Returns false when no simpler candidate
    /// exists (shrinking is exhausted in this direction).
    fn simplify(&mut self) -> bool;

    /// The last `simplify` went too far (the test passed): move back
    /// toward the previous failing value. Returns false when there is no
    /// intermediate candidate left.
    fn complicate(&mut self) -> bool;
}

/// A recipe for generating shrinkable values.
pub trait Strategy: 'static {
    /// The type of value generated.
    type Value: Clone + fmt::Debug + 'static;

    /// Generate one shrinkable value.
    fn new_tree(&self, rng: &mut TestRng) -> Box<dyn ValueTree<Value = Self::Value>>;

    /// Transform every generated value with `f` (shrinks through the map).
    fn prop_map<U, F>(self, f: F) -> Map<Self, U>
    where
        Self: Sized,
        U: Clone + fmt::Debug + 'static,
        F: Fn(Self::Value) -> U + 'static,
    {
        Map {
            inner: self,
            f: Rc::new(f),
        }
    }

    /// Keep only values satisfying `pred`; `whence` labels the filter in
    /// the too-many-rejects panic.
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool + 'static,
    {
        Filter {
            inner: self,
            whence,
            pred: Rc::new(pred),
        }
    }

    /// Build a recursive strategy: `self` generates leaves, and `branch`
    /// maps a strategy for depth-`d` values to one for depth-`d+1`
    /// values. `depth` bounds the nesting; the two size hints are
    /// accepted for proptest signature compatibility but unused (sizes
    /// here are controlled by the inner collection strategies).
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        S2: Strategy<Value = Self::Value>,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            // At each level: 1/3 stop at a leaf, 2/3 recurse one deeper.
            let deeper = branch(current).boxed();
            current = Union::new(vec![(1, leaf.clone()), (2, deeper)]).boxed();
        }
        current
    }

    /// Type-erase into a cheaply clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
    {
        BoxedStrategy(Rc::new(self))
    }
}

// ---------------------------------------------------------------------------
// BoxedStrategy
// ---------------------------------------------------------------------------

/// Object-safe face of [`Strategy`] (no generic combinator methods).
trait DynStrategy<T> {
    fn dyn_new_tree(&self, rng: &mut TestRng) -> Box<dyn ValueTree<Value = T>>;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_new_tree(&self, rng: &mut TestRng) -> Box<dyn ValueTree<Value = S::Value>> {
        self.new_tree(rng)
    }
}

/// A reference-counted, type-erased strategy handle (`.boxed()`).
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: Clone + fmt::Debug + 'static> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_tree(&self, rng: &mut TestRng) -> Box<dyn ValueTree<Value = T>> {
        self.0.dyn_new_tree(rng)
    }
}

// ---------------------------------------------------------------------------
// Just
// ---------------------------------------------------------------------------

/// A strategy producing exactly one value (never shrinks).
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

struct JustTree<T>(T);

impl<T: Clone + fmt::Debug + 'static> Strategy for Just<T> {
    type Value = T;
    fn new_tree(&self, _rng: &mut TestRng) -> Box<dyn ValueTree<Value = T>> {
        Box::new(JustTree(self.0.clone()))
    }
}

impl<T: Clone + fmt::Debug + 'static> ValueTree for JustTree<T> {
    type Value = T;
    fn current(&self) -> T {
        self.0.clone()
    }
    fn simplify(&mut self) -> bool {
        false
    }
    fn complicate(&mut self) -> bool {
        false
    }
}

// ---------------------------------------------------------------------------
// Integers: ranges and any::<T>()
// ---------------------------------------------------------------------------

/// Conversion from the i128 the integer shrinker works in.
pub trait FromI128: Copy {
    /// Lossless narrowing from the shrinker's working type.
    fn from_i128(v: i128) -> Self;
    /// Widening into the shrinker's working type.
    fn to_i128(self) -> i128;
}

macro_rules! impl_from_i128 {
    ($($t:ty),*) => {$(
        impl FromI128 for $t {
            fn from_i128(v: i128) -> $t { v as $t }
            fn to_i128(self) -> i128 { self as i128 }
        }
    )*};
}
impl_from_i128!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Binary-searching integer shrinker: proposes values ever closer to the
/// in-range point nearest zero while the test keeps failing, bisecting
/// between the largest known-passing and smallest known-failing values.
struct IntTree<T> {
    curr: i128,
    /// Lower end of the search interval (simplest candidate still viable).
    lo: i128,
    /// Smallest value known (or assumed) to fail.
    hi: i128,
    _t: PhantomData<T>,
}

impl<T> IntTree<T> {
    fn new(value: i128, origin: i128) -> Self {
        IntTree {
            curr: value,
            lo: origin,
            hi: value,
            _t: PhantomData,
        }
    }
}

/// The in-range value closest to zero: the natural shrink target.
fn origin_in(lo: i128, hi: i128) -> i128 {
    0i128.clamp(lo, hi)
}

impl<T: FromI128 + Clone + fmt::Debug + 'static> ValueTree for IntTree<T> {
    type Value = T;
    fn current(&self) -> T {
        T::from_i128(self.curr)
    }
    fn simplify(&mut self) -> bool {
        if self.curr == self.lo {
            return false;
        }
        // curr is known-failing: it becomes the new upper bound and we
        // probe the midpoint of [lo, curr).
        self.hi = self.curr;
        self.curr = self.lo + (self.curr - self.lo) / 2;
        true
    }
    fn complicate(&mut self) -> bool {
        // curr is known-passing: raise the lower bound past it and probe
        // the midpoint of [lo, hi).
        self.lo = self.curr + 1;
        if self.lo > self.hi {
            return false;
        }
        let next = self.lo + (self.hi - self.lo) / 2;
        if next == self.curr {
            return false;
        }
        self.curr = next;
        true
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_tree(&self, rng: &mut TestRng) -> Box<dyn ValueTree<Value = $t>> {
                assert!(self.start < self.end, "empty range strategy {self:?}");
                let (lo, hi) = (self.start.to_i128(), self.end.to_i128() - 1);
                let v = rng.int_in(lo, hi);
                Box::new(IntTree::<$t>::new(v, origin_in(lo, hi)))
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_tree(&self, rng: &mut TestRng) -> Box<dyn ValueTree<Value = $t>> {
                assert!(self.start() <= self.end(), "empty range strategy {self:?}");
                let (lo, hi) = (self.start().to_i128(), self.end().to_i128());
                let v = rng.int_in(lo, hi);
                Box::new(IntTree::<$t>::new(v, origin_in(lo, hi)))
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Clone + fmt::Debug + 'static {
    /// Generate one shrinkable value spanning the whole domain.
    fn arbitrary_tree(rng: &mut TestRng) -> Box<dyn ValueTree<Value = Self>>;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_tree(&self, rng: &mut TestRng) -> Box<dyn ValueTree<Value = T>> {
        T::arbitrary_tree(rng)
    }
}

/// Full-domain strategy for `T` (proptest's `any::<T>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_tree(rng: &mut TestRng) -> Box<dyn ValueTree<Value = $t>> {
                let v = (rng.next_u64() as $t).to_i128();
                let (lo, hi) = ((<$t>::MIN).to_i128(), (<$t>::MAX).to_i128());
                Box::new(IntTree::<$t>::new(v, origin_in(lo, hi)))
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

struct BoolTree {
    curr: bool,
    exhausted: bool,
}

impl ValueTree for BoolTree {
    type Value = bool;
    fn current(&self) -> bool {
        self.curr
    }
    fn simplify(&mut self) -> bool {
        if self.curr && !self.exhausted {
            self.curr = false;
            self.exhausted = true;
            true
        } else {
            false
        }
    }
    fn complicate(&mut self) -> bool {
        if self.exhausted && !self.curr {
            self.curr = true;
            true
        } else {
            false
        }
    }
}

impl Arbitrary for bool {
    fn arbitrary_tree(rng: &mut TestRng) -> Box<dyn ValueTree<Value = bool>> {
        Box::new(BoolTree {
            curr: rng.next_u64() & 1 == 1,
            exhausted: false,
        })
    }
}

// ---------------------------------------------------------------------------
// Map
// ---------------------------------------------------------------------------

/// Strategy adaptor for [`Strategy::prop_map`].
pub struct Map<S: Strategy, U> {
    inner: S,
    f: Rc<dyn Fn(S::Value) -> U>,
}

struct MapTree<V, U> {
    inner: Box<dyn ValueTree<Value = V>>,
    f: Rc<dyn Fn(V) -> U>,
}

impl<S: Strategy, U: Clone + fmt::Debug + 'static> Strategy for Map<S, U> {
    type Value = U;
    fn new_tree(&self, rng: &mut TestRng) -> Box<dyn ValueTree<Value = U>> {
        Box::new(MapTree {
            inner: self.inner.new_tree(rng),
            f: Rc::clone(&self.f),
        })
    }
}

impl<V: Clone + fmt::Debug + 'static, U: Clone + fmt::Debug + 'static> ValueTree for MapTree<V, U> {
    type Value = U;
    fn current(&self) -> U {
        (self.f)(self.inner.current())
    }
    fn simplify(&mut self) -> bool {
        self.inner.simplify()
    }
    fn complicate(&mut self) -> bool {
        self.inner.complicate()
    }
}

// ---------------------------------------------------------------------------
// Filter
// ---------------------------------------------------------------------------

/// Shared filter predicate over generated values.
type FilterPred<V> = Rc<dyn Fn(&V) -> bool>;

/// Strategy adaptor for [`Strategy::prop_filter`].
pub struct Filter<S: Strategy> {
    inner: S,
    whence: &'static str,
    pred: FilterPred<S::Value>,
}

struct FilterTree<V> {
    inner: Box<dyn ValueTree<Value = V>>,
    pred: FilterPred<V>,
    /// Set once a shrink step violates the predicate: further shrinking
    /// of this subtree stops (correct, merely less minimal).
    dead: bool,
}

impl<S: Strategy> Strategy for Filter<S> {
    type Value = S::Value;
    fn new_tree(&self, rng: &mut TestRng) -> Box<dyn ValueTree<Value = S::Value>> {
        for _ in 0..256 {
            let tree = self.inner.new_tree(rng);
            if (self.pred)(&tree.current()) {
                return Box::new(FilterTree {
                    inner: tree,
                    pred: Rc::clone(&self.pred),
                    dead: false,
                });
            }
        }
        panic!(
            "tinyprop: prop_filter({:?}) rejected 256 consecutive inputs; \
             generate satisfying values directly",
            self.whence
        );
    }
}

impl<V: Clone + fmt::Debug + 'static> ValueTree for FilterTree<V> {
    type Value = V;
    fn current(&self) -> V {
        self.inner.current()
    }
    fn simplify(&mut self) -> bool {
        if self.dead {
            return false;
        }
        if !self.inner.simplify() {
            return false;
        }
        if (self.pred)(&self.inner.current()) {
            return true;
        }
        // The simpler value fell outside the filter: walk back toward the
        // last accepted value, then stop shrinking this subtree.
        for _ in 0..16 {
            if !self.inner.complicate() || (self.pred)(&self.inner.current()) {
                break;
            }
        }
        self.dead = true;
        false
    }
    fn complicate(&mut self) -> bool {
        if self.dead {
            return false;
        }
        self.inner.complicate()
    }
}

// ---------------------------------------------------------------------------
// Union (prop_oneof!)
// ---------------------------------------------------------------------------

/// Weighted choice among strategies of a common value type.
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` pairs; weights need not sum to
    /// anything in particular but must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        assert!(
            arms.iter().any(|(w, _)| *w > 0),
            "prop_oneof! weights are all zero"
        );
        Union { arms }
    }
}

impl<T: Clone + fmt::Debug + 'static> Strategy for Union<T> {
    type Value = T;
    fn new_tree(&self, rng: &mut TestRng) -> Box<dyn ValueTree<Value = T>> {
        let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
        let mut pick = rng.below(total);
        for (w, arm) in &self.arms {
            if pick < *w as u64 {
                // Shrinking stays within the chosen arm (cross-arm
                // shrinking is a proptest nicety we skip).
                return arm.new_tree(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick within total")
    }
}

// ---------------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($TreeName:ident: $($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn new_tree(&self, rng: &mut TestRng) -> Box<dyn ValueTree<Value = Self::Value>> {
                Box::new($TreeName::<$($S::Value),+> {
                    trees: ($(self.$idx.new_tree(rng),)+),
                    cursor: 0,
                    last: None,
                })
            }
        }

        // Parametrized by *value* types (not strategy types): the stored
        // trees are type-erased, so strategy-type parameters would be
        // uninferable at construction.
        struct $TreeName<$($S: Clone + fmt::Debug + 'static),+> {
            trees: ($(Box<dyn ValueTree<Value = $S>>,)+),
            /// First component still eligible for simplification.
            cursor: usize,
            /// Component most recently simplified (complication target).
            last: Option<usize>,
        }

        impl<$($S: Clone + fmt::Debug + 'static),+> ValueTree for $TreeName<$($S),+> {
            type Value = ($($S,)+);
            fn current(&self) -> Self::Value {
                ($(self.trees.$idx.current(),)+)
            }
            fn simplify(&mut self) -> bool {
                $(
                    if self.cursor <= $idx {
                        if self.trees.$idx.simplify() {
                            self.last = Some($idx);
                            return true;
                        }
                        self.cursor = $idx + 1;
                    }
                )+
                false
            }
            fn complicate(&mut self) -> bool {
                match self.last {
                    $(Some($idx) => self.trees.$idx.complicate(),)+
                    _ => false,
                }
            }
        }
    };
}

impl_tuple_strategy!(Tuple1Tree: A.0);
impl_tuple_strategy!(Tuple2Tree: A.0, B.1);
impl_tuple_strategy!(Tuple3Tree: A.0, B.1, C.2);
impl_tuple_strategy!(Tuple4Tree: A.0, B.1, C.2, D.3);
impl_tuple_strategy!(Tuple5Tree: A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(Tuple6Tree: A.0, B.1, C.2, D.3, E.4, F.5);

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

/// Size bounds accepted by [`collection::vec`] (max is exclusive when
/// built from a `Range`, matching proptest).
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::*;

    /// `Vec<V>` of a size drawn from `size`, elements from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        pub(super) elem: S,
        pub(super) size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_tree(&self, rng: &mut TestRng) -> Box<dyn ValueTree<Value = Vec<S::Value>>> {
            let len = rng.int_in(self.size.min as i128, self.size.max as i128) as usize;
            let elems = (0..len).map(|_| self.elem.new_tree(rng)).collect();
            Box::new(VecTree {
                elems,
                min_len: self.size.min,
                phase: VecPhase::Remove { idx: 0 },
                undo: None,
            })
        }
    }
}
pub use collection::VecStrategy;

enum VecPhase {
    /// Trying to delete the element at `idx`.
    Remove { idx: usize },
    /// Deletion done; shrinking element `idx` in place.
    Element { idx: usize },
}

enum VecUndo<V> {
    Reinsert(usize, Box<dyn ValueTree<Value = V>>),
    Element(usize),
}

struct VecTree<V> {
    elems: Vec<Box<dyn ValueTree<Value = V>>>,
    min_len: usize,
    phase: VecPhase,
    undo: Option<VecUndo<V>>,
}

impl<V: Clone + fmt::Debug + 'static> ValueTree for VecTree<V> {
    type Value = Vec<V>;
    fn current(&self) -> Vec<V> {
        self.elems.iter().map(|t| t.current()).collect()
    }
    fn simplify(&mut self) -> bool {
        loop {
            match self.phase {
                VecPhase::Remove { idx } => {
                    if self.elems.len() > self.min_len && idx < self.elems.len() {
                        let removed = self.elems.remove(idx);
                        self.undo = Some(VecUndo::Reinsert(idx, removed));
                        return true;
                    }
                    self.phase = VecPhase::Element { idx: 0 };
                }
                VecPhase::Element { idx } => {
                    if idx >= self.elems.len() {
                        return false;
                    }
                    if self.elems[idx].simplify() {
                        self.undo = Some(VecUndo::Element(idx));
                        return true;
                    }
                    self.phase = VecPhase::Element { idx: idx + 1 };
                }
            }
        }
    }
    fn complicate(&mut self) -> bool {
        match self.undo.take() {
            Some(VecUndo::Reinsert(idx, tree)) => {
                // This element is load-bearing: put it back and never try
                // to delete it again (monotonic cursor).
                self.elems.insert(idx, tree);
                self.phase = VecPhase::Remove { idx: idx + 1 };
                true
            }
            Some(VecUndo::Element(idx)) if idx < self.elems.len() => {
                if self.elems[idx].complicate() {
                    self.undo = Some(VecUndo::Element(idx));
                    true
                } else {
                    false
                }
            }
            Some(VecUndo::Element(_)) | None => false,
        }
    }
}

// ---------------------------------------------------------------------------
// Option
// ---------------------------------------------------------------------------

/// Option strategies (`prop::option`).
pub mod option {
    use super::*;

    /// `Option<V>`: `Some` three times out of four (proptest's default
    /// weighting), shrinking first through the inner value and finally to
    /// `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// Strategy returned by [`of`].
    pub struct OptionStrategy<S> {
        pub(super) inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn new_tree(&self, rng: &mut TestRng) -> Box<dyn ValueTree<Value = Option<S::Value>>> {
            let some = rng.below(4) != 0;
            Box::new(OptionTree {
                inner: some.then(|| self.inner.new_tree(rng)),
                is_none: !some,
                tried_none: false,
            })
        }
    }
}
pub use option::OptionStrategy;

struct OptionTree<V> {
    inner: Option<Box<dyn ValueTree<Value = V>>>,
    is_none: bool,
    tried_none: bool,
}

impl<V: Clone + fmt::Debug + 'static> ValueTree for OptionTree<V> {
    type Value = Option<V>;
    fn current(&self) -> Option<V> {
        if self.is_none {
            None
        } else {
            self.inner.as_ref().map(|t| t.current())
        }
    }
    fn simplify(&mut self) -> bool {
        if self.is_none {
            return false;
        }
        if let Some(t) = &mut self.inner {
            if t.simplify() {
                return true;
            }
            if !self.tried_none {
                self.tried_none = true;
                self.is_none = true;
                return true;
            }
        }
        false
    }
    fn complicate(&mut self) -> bool {
        if self.is_none && self.tried_none && self.inner.is_some() {
            // None passed the test: restore the Some payload (which is
            // already fully simplified) and stop there.
            self.is_none = false;
            true
        } else if !self.is_none {
            self.inner.as_mut().is_some_and(|t| t.complicate())
        } else {
            false
        }
    }
}

// ---------------------------------------------------------------------------
// String patterns (regex subset)
// ---------------------------------------------------------------------------

/// One pattern atom: a character class repeated `min..=max` times.
#[derive(Clone, Debug)]
struct Atom {
    /// Inclusive character ranges forming the class.
    class: Vec<(char, char)>,
    min: usize,
    max: usize,
}

impl Atom {
    fn sample(&self, rng: &mut TestRng) -> char {
        let total: u64 = self
            .class
            .iter()
            .map(|(a, b)| (*b as u64) - (*a as u64) + 1)
            .sum();
        let mut pick = rng.below(total);
        for (a, b) in &self.class {
            let span = (*b as u64) - (*a as u64) + 1;
            if pick < span {
                return char::from_u32(*a as u32 + pick as u32).expect("in-range char");
            }
            pick -= span;
        }
        unreachable!("pick within total")
    }
}

/// Parse the regex subset used by the property suites: sequences of
/// literal characters or `[...]` classes (with `a-z` ranges), each
/// optionally quantified by `{m,n}`, `{n}`, `?`, `*`, or `+` (the
/// unbounded quantifiers are capped at 8 repetitions). Anything fancier
/// (alternation, groups, anchors, escapes) panics loudly.
fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let mut out = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let class: Vec<(char, char)> = match c {
            '[' => {
                let mut members = Vec::new();
                loop {
                    let m = chars
                        .next()
                        .unwrap_or_else(|| panic!("unterminated [ in pattern {pattern:?}"));
                    if m == ']' {
                        break;
                    }
                    if m == '^' && members.is_empty() {
                        panic!("negated classes unsupported in tinyprop pattern {pattern:?}");
                    }
                    if chars.peek() == Some(&'-') {
                        chars.next();
                        let hi = chars
                            .next()
                            .unwrap_or_else(|| panic!("dangling - in pattern {pattern:?}"));
                        if hi == ']' {
                            members.push((m, m));
                            members.push(('-', '-'));
                            break;
                        }
                        assert!(m <= hi, "inverted range {m}-{hi} in pattern {pattern:?}");
                        members.push((m, hi));
                    } else {
                        members.push((m, m));
                    }
                }
                assert!(!members.is_empty(), "empty class in pattern {pattern:?}");
                members
            }
            '(' | ')' | '|' | '.' | '^' | '$' | '\\' => panic!(
                "tinyprop string patterns support only classes and quantifiers; \
                 {c:?} in {pattern:?} is not implemented"
            ),
            lit => vec![(lit, lit)],
        };
        let (min, max) = match chars.peek() {
            Some('{') => {
                chars.next();
                let body: String = chars.by_ref().take_while(|&c| c != '}').collect();
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.parse()
                            .unwrap_or_else(|_| panic!("bad {{m,n}} in {pattern:?}")),
                        n.parse()
                            .unwrap_or_else(|_| panic!("bad {{m,n}} in {pattern:?}")),
                    ),
                    None => {
                        let n = body
                            .parse()
                            .unwrap_or_else(|_| panic!("bad {{n}} in {pattern:?}"));
                        (n, n)
                    }
                }
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            _ => (1, 1),
        };
        assert!(min <= max, "bad quantifier in pattern {pattern:?}");
        out.push(Atom { class, min, max });
    }
    out
}

impl Strategy for &'static str {
    type Value = String;
    fn new_tree(&self, rng: &mut TestRng) -> Box<dyn ValueTree<Value = String>> {
        let atoms = parse_pattern(self);
        let chars: Vec<Vec<char>> = atoms
            .iter()
            .map(|a| {
                let n = rng.int_in(a.min as i128, a.max as i128) as usize;
                (0..n).map(|_| a.sample(rng)).collect()
            })
            .collect();
        let frozen = vec![false; atoms.len()];
        Box::new(StrTree {
            atoms,
            chars,
            frozen,
            undo: None,
        })
    }
}

struct StrTree {
    atoms: Vec<Atom>,
    /// Concrete repetitions chosen for each atom.
    chars: Vec<Vec<char>>,
    /// Atoms whose length has proven load-bearing (no further pops).
    frozen: Vec<bool>,
    undo: Option<(usize, char)>,
}

impl ValueTree for StrTree {
    type Value = String;
    fn current(&self) -> String {
        self.chars.iter().flatten().collect()
    }
    fn simplify(&mut self) -> bool {
        // Shorten from the rightmost atom that is above its minimum.
        for idx in (0..self.atoms.len()).rev() {
            if self.frozen[idx] || self.chars[idx].len() <= self.atoms[idx].min {
                continue;
            }
            let c = self.chars[idx].pop().expect("len > min >= 0");
            self.undo = Some((idx, c));
            return true;
        }
        false
    }
    fn complicate(&mut self) -> bool {
        match self.undo.take() {
            Some((idx, c)) => {
                self.chars[idx].push(c);
                self.frozen[idx] = true;
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::new(0xDEAD_BEEF)
    }

    fn matches_class(c: char, class: &[(char, char)]) -> bool {
        class.iter().any(|(a, b)| (*a..=*b).contains(&c))
    }

    #[test]
    fn range_strategy_in_bounds_and_shrinks_to_origin() {
        let mut r = rng();
        for _ in 0..100 {
            let mut t = (10i64..20).new_tree(&mut r);
            assert!((10..20).contains(&t.current()));
            // Shrinking with no complications walks to the origin (10).
            while t.simplify() {}
            assert_eq!(t.current(), 10);
        }
    }

    #[test]
    fn int_binary_search_converges() {
        // Simulate a test "fails iff v >= 57" on value 100 in 0..1000.
        let mut t = IntTree::<i64>::new(100, 0);
        let fails = |v: i64| v >= 57;
        // Runner loop in miniature.
        let mut best = 100;
        for _ in 0..64 {
            if !t.simplify() {
                break;
            }
            if fails(t.current()) {
                best = t.current();
            } else {
                let mut recovered = false;
                for _ in 0..64 {
                    if !t.complicate() {
                        break;
                    }
                    if fails(t.current()) {
                        best = t.current();
                        recovered = true;
                        break;
                    }
                }
                if !recovered {
                    break;
                }
            }
        }
        assert_eq!(best, 57);
    }

    #[test]
    fn vec_tree_removes_then_shrinks_elements() {
        let mut r = rng();
        let strat = collection::vec(0i64..100, 3..6);
        let mut t = strat.new_tree(&mut r);
        let initial = t.current();
        assert!((3..6).contains(&initial.len()));
        // Unconstrained simplification bottoms out at min_len zeros.
        while t.simplify() {}
        let fin = t.current();
        assert_eq!(fin.len(), 3);
        assert!(fin.iter().all(|&v| v == 0), "elements not shrunk: {fin:?}");
    }

    #[test]
    fn union_respects_arms() {
        let mut r = rng();
        let s = Union::new(vec![(1, (0i64..10).boxed()), (1, (100i64..110).boxed())]);
        let mut low = false;
        let mut high = false;
        for _ in 0..200 {
            let v = s.new_tree(&mut r).current();
            assert!((0..10).contains(&v) || (100..110).contains(&v));
            low |= v < 10;
            high |= v >= 100;
        }
        assert!(low && high, "both arms should be exercised");
    }

    #[test]
    fn pattern_generates_matching_strings() {
        let mut r = rng();
        let atoms = parse_pattern("[a-g][a-g0-9]{0,5}");
        assert_eq!(atoms.len(), 2);
        for _ in 0..200 {
            let mut t = "[a-g][a-g0-9]{0,5}".new_tree(&mut r);
            let s = t.current();
            let cs: Vec<char> = s.chars().collect();
            assert!((1..=6).contains(&cs.len()), "bad length: {s:?}");
            assert!(matches_class(cs[0], &atoms[0].class), "bad head: {s:?}");
            for &c in &cs[1..] {
                assert!(matches_class(c, &atoms[1].class), "bad tail: {s:?}");
            }
            // Shrinking only ever shortens toward the minimum, staying valid.
            while t.simplify() {}
            assert_eq!(t.current().chars().count(), 1);
        }
    }

    #[test]
    fn pattern_with_space_class() {
        let mut r = rng();
        for _ in 0..100 {
            let s = "[a-z ]{0,8}".new_tree(&mut r).current();
            assert!(s.chars().count() <= 8);
            assert!(
                s.chars().all(|c| c == ' ' || c.is_ascii_lowercase()),
                "{s:?}"
            );
        }
    }

    #[test]
    fn filter_rejects_and_accepts() {
        let mut r = rng();
        let s = (0i64..100).prop_filter("even", |v| v % 2 == 0);
        for _ in 0..50 {
            assert_eq!(s.new_tree(&mut r).current() % 2, 0);
        }
    }

    #[test]
    fn map_shrinks_through() {
        let mut r = rng();
        let s = (0i64..100).prop_map(|v| format!("n={v}"));
        let mut t = s.new_tree(&mut r);
        while t.simplify() {}
        assert_eq!(t.current(), "n=0");
    }

    #[test]
    fn option_of_produces_both_and_shrinks_to_none() {
        let mut r = rng();
        let s = option::of(1i64..10);
        let (mut some, mut none) = (false, false);
        for _ in 0..100 {
            let mut t = s.new_tree(&mut r);
            match t.current() {
                Some(v) => {
                    assert!((1..10).contains(&v));
                    some = true;
                    while t.simplify() {}
                    assert_eq!(t.current(), None, "Some should shrink to None");
                }
                None => none = true,
            }
        }
        assert!(some && none);
    }

    #[test]
    fn recursive_strategy_is_depth_bounded() {
        #[derive(Clone, Debug, PartialEq)]
        enum T {
            Leaf(i64),
            Node(Vec<T>),
        }
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf(_) => 1,
                T::Node(v) => 1 + v.iter().map(depth).max().unwrap_or(0),
            }
        }
        let s = (0i64..10)
            .prop_map(T::Leaf)
            .prop_recursive(3, 16, 3, |inner| {
                collection::vec(inner, 0..3).prop_map(T::Node)
            });
        let mut r = rng();
        for _ in 0..100 {
            let v = s.new_tree(&mut r).current();
            assert!(depth(&v) <= 4, "depth bound exceeded: {v:?}");
        }
    }

    #[test]
    fn tuples_shrink_componentwise() {
        let mut r = rng();
        let mut t = ((0i64..50), (0i64..50)).new_tree(&mut r);
        while t.simplify() {}
        assert_eq!(t.current(), (0, 0));
    }
}
