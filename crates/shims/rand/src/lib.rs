//! Hermetic in-tree shim for [`rand`](https://docs.rs/rand) (0.9-era API).
//!
//! The workspace builds with `--offline` and zero registry dependencies
//! (DESIGN.md § "Hermetic build"), so the subset of `rand` this repo uses
//! is reimplemented here:
//!
//! * [`rngs::StdRng`] — a xoshiro256\*\* core, seeded from a `u64` through
//!   SplitMix64 (the seeding scheme recommended by the xoshiro authors);
//! * [`SeedableRng::seed_from_u64`] / [`SeedableRng::from_seed`];
//! * [`Rng::random_range`] (and the pre-0.9 spelling [`Rng::gen_range`])
//!   over half-open and inclusive integer ranges, plus [`Rng::random`]
//!   for primitive types via [`Fill`];
//! * [`thread_rng`] / [`rng`] returning a per-thread generator seeded from
//!   the system clock and a thread-local counter.
//!
//! The stream is *not* bit-compatible with crates.io `rand`'s `StdRng`
//! (which is ChaCha12); everything in this repo that cares about
//! determinism only requires that the same seed yields the same stream
//! across runs of *this* code, which xoshiro256\*\* guarantees.

use std::cell::RefCell;
use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// Core generator: SplitMix64 (seeding) + xoshiro256** (stream)
// ---------------------------------------------------------------------------

/// SplitMix64 step: the recommended seed-expansion function for xoshiro.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256\*\* — Blackman & Vigna's all-purpose 256-bit generator.
#[derive(Clone, Debug)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32 random bits (upper half of the 64-bit output).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

// ---------------------------------------------------------------------------
// SeedableRng
// ---------------------------------------------------------------------------

/// Construction from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Build from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be produced uniformly at random ([`Rng::random`]).
pub trait Fill {
    /// Draw one uniformly random value from `rng`.
    fn fill_from(rng: &mut dyn RngCore) -> Self;
}

/// Object-safe source of random bits (the `rand_core::RngCore` analogue).
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

macro_rules! impl_fill_int {
    ($($t:ty),*) => {$(
        impl Fill for $t {
            fn fill_from(rng: &mut dyn RngCore) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_fill_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Fill for bool {
    fn fill_from(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Fill for f64 {
    fn fill_from(rng: &mut dyn RngCore) -> f64 {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Fill for f32 {
    fn fill_from(rng: &mut dyn RngCore) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

// ---------------------------------------------------------------------------
// Uniform ranges
// ---------------------------------------------------------------------------

/// Ranges that can be sampled uniformly (the `SampleRange` analogue).
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range. Panics if empty.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = uniform_u128(rng, span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = uniform_u128(rng, span);
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform value in `[0, span)` (span ≤ 2^64 here), by Lemire's widening
/// multiplication with a rejection step to remove modulo bias.
fn uniform_u128(rng: &mut dyn RngCore, span: u128) -> u128 {
    debug_assert!(span > 0 && span <= u64::MAX as u128 + 1);
    let s = span as u64; // wraps to 0 exactly when span == 2^64
    if s == 0 {
        // span == 2^64: every u64 is fair.
        return rng.next_u64() as u128;
    }
    let threshold = s.wrapping_neg() % s; // (2^64 - s) mod s
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (s as u128);
        if (m as u64) >= threshold {
            return m >> 64;
        }
    }
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

/// The user-facing trait, mirroring `rand::Rng`'s subset used in-tree.
pub trait Rng: RngCore {
    /// Uniform sample from an integer range (`rand` 0.9 name).
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Uniform sample from an integer range (pre-0.9 name, kept so both
    /// spellings work against the shim).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Uniformly random value of a primitive type (`rand` 0.9 name).
    fn random<T: Fill>(&mut self) -> T
    where
        Self: Sized,
    {
        T::fill_from(self)
    }

    /// Probability-`p` coin flip.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::fill_from(self) < p
    }
}

impl<R: RngCore> Rng for R {}

// ---------------------------------------------------------------------------
// rngs::StdRng
// ---------------------------------------------------------------------------

/// Named engines, mirroring `rand::rngs`.
pub mod rngs {
    use super::*;

    /// The standard seedable engine (xoshiro256\*\* here; ChaCha12 in the
    /// real crate — see the crate docs for why that difference is fine).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        core: Xoshiro256StarStar,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.core.next_u64()
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            if s == [0; 4] {
                // xoshiro's one illegal state; nudge deterministically.
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng {
                core: Xoshiro256StarStar { s },
            }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng {
                core: Xoshiro256StarStar { s },
            }
        }
    }

    /// Per-thread generator handle returned by [`crate::thread_rng`].
    #[derive(Clone, Debug)]
    pub struct ThreadRng;

    impl RngCore for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            THREAD_RNG.with(|r| r.borrow_mut().next_u64())
        }
    }

    thread_local! {
        pub(super) static THREAD_RNG: RefCell<StdRng> = RefCell::new({
            use std::time::{SystemTime, UNIX_EPOCH};
            let nanos = SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0x5EED);
            // Mix in a per-thread component so simultaneous threads differ.
            let tid = {
                let mut h = std::collections::hash_map::DefaultHasher::new();
                use std::hash::{Hash, Hasher};
                std::thread::current().id().hash(&mut h);
                h.finish()
            };
            StdRng::seed_from_u64(nanos ^ tid.rotate_left(32))
        });
    }
}

/// A lazily-seeded per-thread generator (`rand::thread_rng`).
pub fn thread_rng() -> rngs::ThreadRng {
    rngs::ThreadRng
}

/// `rand` 0.9 spelling of [`thread_rng`].
pub fn rng() -> rngs::ThreadRng {
    rngs::ThreadRng
}

/// Convenience free function: one uniformly random value off the
/// thread-local engine (`rand::random`).
pub fn random<T: Fill>() -> T {
    T::fill_from(&mut rngs::ThreadRng)
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::{StdRng, ThreadRng};
    pub use crate::{random, rng, thread_rng, Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(2016);
        let mut b = StdRng::seed_from_u64(2016);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.random_range(3..=8usize);
            assert!((3..=8).contains(&v));
            let w = r.random_range(0..36usize);
            assert!(w < 36);
            let n = r.random_range(-50i64..50);
            assert!((-50..50).contains(&n));
        }
    }

    #[test]
    fn all_range_values_reachable() {
        let mut r = StdRng::seed_from_u64(42);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[r.random_range(0..6usize)] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "uniform sampler misses values: {seen:?}"
        );
    }

    #[test]
    fn single_value_range() {
        let mut r = StdRng::seed_from_u64(1);
        assert_eq!(r.random_range(5..=5u32), 5);
        assert_eq!(r.random_range(5..6u32), 5);
    }

    #[test]
    fn full_u64_range_via_random() {
        let mut r = StdRng::seed_from_u64(9);
        // Smoke: draws are not all equal and bool flips both ways.
        let draws: Vec<u64> = (0..16).map(|_| r.random()).collect();
        assert!(draws.windows(2).any(|w| w[0] != w[1]));
        let flips: Vec<bool> = (0..64).map(|_| r.random()).collect();
        assert!(flips.contains(&true) && flips.contains(&false));
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn thread_rng_progresses() {
        let mut t = thread_rng();
        assert_ne!(t.next_u64(), t.next_u64());
    }
}
