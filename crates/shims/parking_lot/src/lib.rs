//! Hermetic in-tree shim for [`parking_lot`](https://docs.rs/parking_lot)
//! — and the single swap point for schedule exploration.
//!
//! Two build modes (see DESIGN.md § "Schedule exploration"):
//!
//! * **Normal** (tier-1): the `std::sync`-backed reimplementation in
//!   [`std_impl`] — parking_lot's panic-free guard API over real OS
//!   locks. This is what production code gets.
//! * **Model-checked** (`RUSTFLAGS="--cfg schedtest"`): every type is
//!   re-exported from the `schedtest` crate's virtual scheduler instead,
//!   so `blockingq`, `pipes`, and `exec` run *unmodified* under the
//!   exhaustive interleaving explorer. Outside an active exploration the
//!   virtual types degrade to real locks, so mixed binaries stay correct.
//!
//! The [`thread`] and [`sync`] modules extend the same swap to thread
//! spawning/joining and the atomics, which the runtime crates route
//! through here (instead of `std::thread`/`std::sync::atomic`) for the
//! same reason.

#[cfg(not(schedtest))]
mod std_impl;

#[cfg(not(schedtest))]
pub use std_impl::{
    Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard, WaitTimeoutResult,
};

#[cfg(schedtest)]
pub use schedtest::sync::{
    Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard, WaitTimeoutResult,
};

/// Thread spawning/joining, virtualized under `--cfg schedtest`.
///
/// The subset the runtime crates use: `spawn`, `Builder::new().name(..)
/// .spawn(..)`, `JoinHandle::join`, `Result`, `yield_now`, `sleep`.
pub mod thread {
    #[cfg(not(schedtest))]
    pub use std::thread::{sleep, spawn, yield_now, Builder, JoinHandle, Result};

    #[cfg(schedtest)]
    pub use schedtest::thread::{sleep, spawn, yield_now, Builder, JoinHandle, Result};
}

/// `Arc` and the atomics, virtualized under `--cfg schedtest`.
pub mod sync {
    pub use std::sync::Arc;

    /// Atomic integer types whose every access is a scheduling point
    /// under the explorer.
    pub mod atomic {
        #[cfg(not(schedtest))]
        pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

        #[cfg(schedtest)]
        pub use schedtest::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
    }
}

// Keep the dependency edge unconditional: cargo cannot gate a dependency
// on a custom --cfg, and schedtest is std-only, so the normal build just
// carries an unused (tiny) rlib.
#[cfg(schedtest)]
extern crate schedtest;
