//! Hermetic in-tree shim for [`parking_lot`](https://docs.rs/parking_lot).
//!
//! The real crate lives on crates.io; this workspace must build with
//! `--offline` and zero registry dependencies (see DESIGN.md § "Hermetic
//! build"), so the subset of the API this repo uses is reimplemented here
//! over `std::sync`. Differences from `std`, matching parking_lot:
//!
//! * `lock()` / `read()` / `write()` return guards directly, not
//!   `LockResult`s — poisoning is swallowed (`PoisonError::into_inner`),
//!   which is also parking_lot's semantics (its locks never poison);
//! * `Condvar::wait` takes `&mut MutexGuard` instead of consuming the
//!   guard;
//! * `Condvar::wait_until` takes an `Instant` deadline and returns a
//!   [`WaitTimeoutResult`] with a `timed_out()` accessor.
//!
//! Fairness, eventual fairness, and the `const fn` constructors of the real
//! crate are *not* reproduced; nothing in this workspace relies on them.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// A mutual-exclusion primitive with parking_lot's panic-free `lock()` API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
///
/// Wraps the std guard in an `Option` so [`Condvar::wait`] can temporarily
/// take ownership (std's `wait` consumes the guard) and put it back.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Never returns `Err`:
    /// a poisoned lock (a panic while held) is swallowed, as in
    /// parking_lot where locks cannot poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(
                self.inner
                    .lock()
                    .unwrap_or_else(sync::PoisonError::into_inner),
            ),
        }
    }

    /// Attempt to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutably borrow the underlying data (no locking needed: `&mut self`
    /// proves unique access).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner
            .as_ref()
            .expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_mut()
            .expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// Result of a timed wait: reports whether the deadline passed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True iff the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable whose `wait` re-borrows the guard in place
/// (parking_lot style) instead of consuming it (std style).
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Atomically release the guarded mutex and block until notified;
    /// re-acquires the lock before returning. Spurious wakeups possible.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard not already waiting");
        guard.inner = Some(
            self.inner
                .wait(inner)
                .unwrap_or_else(sync::PoisonError::into_inner),
        );
    }

    /// [`Condvar::wait`] with an absolute deadline.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        self.wait_for(guard, timeout)
    }

    /// [`Condvar::wait`] with a relative timeout.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard not already waiting");
        let (g, res) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(sync::PoisonError::into_inner);
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Condvar")
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

/// Reader-writer lock with parking_lot's panic-free `read()`/`write()` API.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read RAII guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write RAII guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a new reader-writer lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self
                .inner
                .read()
                .unwrap_or_else(sync::PoisonError::into_inner),
        }
    }

    /// Acquire exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self
                .inner
                .write()
                .unwrap_or_else(sync::PoisonError::into_inner),
        }
    }

    /// Attempt shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(sync::TryLockError::Poisoned(p)) => Some(RwLockReadGuard {
                inner: p.into_inner(),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempt exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { inner: g }),
            Err(sync::TryLockError::Poisoned(p)) => Some(RwLockWriteGuard {
                inner: p.into_inner(),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutably borrow the underlying data without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            None => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_basic_lock_unlock() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn mutex_try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn mutex_swallows_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        // parking_lot semantics: a panic while holding the lock must not
        // make subsequent lock() calls fail.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn condvar_wait_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let h = thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                cvar.wait(&mut ready);
            }
            true
        });
        thread::sleep(Duration::from_millis(10));
        *pair.0.lock() = true;
        pair.1.notify_all();
        assert!(h.join().expect("waiter ok"));
    }

    #[test]
    fn condvar_wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(5));
        assert!(res.timed_out());
        // The guard is usable again after the timed-out wait.
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_many_readers_one_writer() {
        let l = RwLock::new(7);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!((*r1, *r2), (7, 7));
            assert!(l.try_write().is_none());
        }
        *l.write() = 8;
        assert_eq!(*l.read(), 8);
    }
}
