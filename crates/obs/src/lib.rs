//! Lock-light runtime observability for the concurrent-generator runtime.
//!
//! The paper's evaluation (Sec. VII, Fig. 6) is entirely about *measured*
//! behaviour of the word-count variants; this crate gives the runtime the
//! instrumentation that evaluation needs, cheaply enough to leave on in
//! benchmarks:
//!
//! * [`Counter`] — monotonically increasing relaxed-atomic `u64`;
//! * [`Gauge`] — relaxed-atomic `i64` with `set`/`add`/high-water
//!   [`Gauge::record_max`];
//! * [`Histogram`] — a fixed-size *window* of the most recent samples,
//!   stored in atomics (writers never lock), with nearest-rank
//!   p50/p95/p99 quantiles computed on read;
//! * [`Timer`] — count + total wall time + a latency histogram, fed
//!   either by an RAII [`TimerGuard`] or an explicit duration;
//! * [`Registry`] — a name → metric map that renders a *deterministic*
//!   (sorted, stable) text snapshot and a hand-rolled JSON snapshot (no
//!   serde: the workspace is hermetic, see DESIGN.md § "Hermetic build").
//!
//! Instrumented crates (`blockingq`, `pipes`, `exec`, `mapreduce`,
//! `wordcount`) depend on this crate **optionally**, behind a cargo
//! feature named `obs` that is off by default: with the feature off every
//! instrumentation call site is compiled out entirely (a `macro_rules!`
//! shim expands to nothing), so the hot paths carry zero cost — not even
//! a no-op function call. The `bench` crate and the `figure6` binary turn
//! the feature on by default so every benchmark run carries queue depths,
//! stage timings, and pool utilization alongside its timings.
//!
//! Process-wide aggregation: instrumentation registers into
//! [`Registry::global`], keyed by dotted metric names
//! (`blockingq.queue.puts`, `exec.pool.busy`, ...). All instances of a
//! subsystem share one family of metrics — the snapshot answers "what did
//! the runtime do", not "what did queue #17 do" — which keeps the hot
//! path to a single relaxed atomic op.

mod metrics;
mod registry;

pub use metrics::{Counter, Gauge, Histogram, Timer, TimerGuard, DEFAULT_WINDOW};
pub use registry::{Metric, Registry, Snapshot};

use std::sync::Arc;

/// Register (or fetch) a counter in the global registry.
pub fn counter(name: &str) -> Arc<Counter> {
    Registry::global().counter(name)
}

/// Register (or fetch) a gauge in the global registry.
pub fn gauge(name: &str) -> Arc<Gauge> {
    Registry::global().gauge(name)
}

/// Register (or fetch) a histogram (default window) in the global registry.
pub fn histogram(name: &str) -> Arc<Histogram> {
    Registry::global().histogram(name)
}

/// Register (or fetch) a timer in the global registry.
pub fn timer(name: &str) -> Arc<Timer> {
    Registry::global().timer(name)
}

/// Take a snapshot of the global registry.
pub fn snapshot() -> Snapshot {
    Registry::global().snapshot()
}

/// Minimal JSON string escaping for the hand-rolled snapshot writers
/// (metric names are plain dotted identifiers, but stay robust anyway).
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
