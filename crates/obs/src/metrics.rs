//! The metric primitives: relaxed-atomic counters and gauges, a windowed
//! histogram, and a stage timer.
//!
//! Everything here is wait-free on the write path (a single
//! `Ordering::Relaxed` atomic op per event); reads reconstruct a
//! consistent-enough view for reporting. Relaxed ordering is deliberate:
//! metrics never synchronize program state, they only count it, and the
//! quiescent points where snapshots are taken (end of a benchmark run,
//! after joins) have already synchronized via the structures under
//! measurement.

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Default number of samples a [`Histogram`] window retains.
pub const DEFAULT_WINDOW: usize = 512;

// ---------------------------------------------------------------------------
// Counter
// ---------------------------------------------------------------------------

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter starting at zero.
    pub const fn new() -> Counter {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    /// Count one event.
    #[inline]
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Count `n` events.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Reset to zero (between benchmark phases).
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Gauge
// ---------------------------------------------------------------------------

/// An instantaneous level (queue depth, live workers) with a high-water
/// helper for recording peaks.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A gauge starting at zero.
    pub const fn new() -> Gauge {
        Gauge {
            value: AtomicI64::new(0),
        }
    }

    /// Set the level.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adjust the level by `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Increment the level.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Decrement the level.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Raise the gauge to `v` if `v` exceeds the current value — the
    /// high-water-mark discipline used for queue depths.
    #[inline]
    pub fn record_max(&self, v: i64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Current level.
    #[inline]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Reset to zero.
    pub fn reset(&self) {
        self.set(0);
    }
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

/// A windowed histogram: the most recent `window` samples, stored exactly,
/// in a lock-free ring of atomics.
///
/// Writers claim a slot with one `fetch_add` and store with one `store` —
/// no locking, no allocation. Readers copy the window out and sort it, so
/// quantiles are *exact* over the retained window (nearest-rank), not
/// bucket approximations. A torn read can at worst observe a sample from
/// the previous lap of the ring — acceptable for reporting, and impossible
/// at the quiescent points where snapshots are taken.
#[derive(Debug)]
pub struct Histogram {
    slots: Box<[AtomicU64]>,
    /// Total samples ever recorded; `head % slots.len()` is the next slot.
    head: AtomicUsize,
}

impl Histogram {
    /// A histogram retaining the last `window` samples (minimum 1).
    pub fn with_window(window: usize) -> Histogram {
        let window = window.max(1);
        let slots: Vec<AtomicU64> = (0..window).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            slots: slots.into_boxed_slice(),
            head: AtomicUsize::new(0),
        }
    }

    /// A histogram with the [`DEFAULT_WINDOW`].
    pub fn new() -> Histogram {
        Histogram::with_window(DEFAULT_WINDOW)
    }

    /// The configured window size.
    pub fn window(&self) -> usize {
        self.slots.len()
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        let i = self.head.fetch_add(1, Ordering::Relaxed) % self.slots.len();
        self.slots[i].store(v, Ordering::Relaxed);
    }

    /// Total samples ever recorded (may exceed the window).
    pub fn count(&self) -> u64 {
        self.head.load(Ordering::Relaxed) as u64
    }

    /// Copy out the currently retained samples (unsorted, at most
    /// `window()` of them).
    pub fn samples(&self) -> Vec<u64> {
        let head = self.head.load(Ordering::Relaxed);
        let n = head.min(self.slots.len());
        self.slots[..n]
            .iter()
            .map(|s| s.load(Ordering::Relaxed))
            .collect()
    }

    /// Nearest-rank quantile over the retained window: for `n` sorted
    /// samples, `quantile(q)` returns the sample at index
    /// `round(q * (n - 1))`. Returns `None` when empty. `q` is clamped to
    /// `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let mut v = self.samples();
        if v.is_empty() {
            return None;
        }
        v.sort_unstable();
        Some(v[Self::rank(q, v.len())])
    }

    /// The nearest-rank index used by [`Histogram::quantile`] (exposed so
    /// tests can oracle-check against a plain sorted vector).
    pub fn rank(q: f64, n: usize) -> usize {
        debug_assert!(n > 0);
        let q = q.clamp(0.0, 1.0);
        ((q * (n - 1) as f64).round() as usize).min(n - 1)
    }

    /// One consistent reporting view: count, min, max, p50, p95, p99 over
    /// the retained window (all `None`-free only when non-empty).
    pub fn stats(&self) -> HistogramStats {
        let mut v = self.samples();
        v.sort_unstable();
        if v.is_empty() {
            return HistogramStats {
                count: self.count(),
                ..HistogramStats::default()
            };
        }
        let n = v.len();
        HistogramStats {
            count: self.count(),
            min: v[0],
            max: v[n - 1],
            p50: v[Self::rank(0.50, n)],
            p95: v[Self::rank(0.95, n)],
            p99: v[Self::rank(0.99, n)],
        }
    }

    /// Forget all samples.
    pub fn reset(&self) {
        self.head.store(0, Ordering::Relaxed);
        for s in self.slots.iter() {
            s.store(0, Ordering::Relaxed);
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// Point-in-time summary of a [`Histogram`] window.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HistogramStats {
    pub count: u64,
    pub min: u64,
    pub max: u64,
    pub p50: u64,
    pub p95: u64,
    pub p99: u64,
}

// ---------------------------------------------------------------------------
// Timer
// ---------------------------------------------------------------------------

/// A per-stage timer: total busy nanoseconds, invocation count, and a
/// latency histogram of recent invocations.
#[derive(Debug)]
pub struct Timer {
    count: Counter,
    total_ns: Counter,
    latency_ns: Histogram,
}

impl Timer {
    /// A timer with the default latency window.
    pub fn new() -> Timer {
        Timer {
            count: Counter::new(),
            total_ns: Counter::new(),
            latency_ns: Histogram::new(),
        }
    }

    /// Start timing a span; the span is recorded when the guard drops.
    #[inline]
    pub fn start(&self) -> TimerGuard<'_> {
        TimerGuard {
            timer: self,
            start: Instant::now(),
        }
    }

    /// Record an explicit duration.
    #[inline]
    pub fn observe(&self, d: Duration) {
        self.observe_ns(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Record an explicit span in nanoseconds.
    #[inline]
    pub fn observe_ns(&self, ns: u64) {
        self.count.inc();
        self.total_ns.add(ns);
        self.latency_ns.record(ns);
    }

    /// Number of recorded spans.
    pub fn count(&self) -> u64 {
        self.count.get()
    }

    /// Total recorded busy time in nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.total_ns.get()
    }

    /// Summary of the recent-latency window.
    pub fn latency_stats(&self) -> HistogramStats {
        self.latency_ns.stats()
    }

    /// Reset count, total, and the latency window.
    pub fn reset(&self) {
        self.count.reset();
        self.total_ns.reset();
        self.latency_ns.reset();
    }
}

impl Default for Timer {
    fn default() -> Self {
        Timer::new()
    }
}

/// RAII span guard returned by [`Timer::start`].
#[derive(Debug)]
pub struct TimerGuard<'a> {
    timer: &'a Timer,
    start: Instant,
}

impl TimerGuard<'_> {
    /// Stop early and record (equivalent to dropping the guard).
    pub fn stop(self) {}
}

impl Drop for TimerGuard<'_> {
    fn drop(&mut self) {
        self.timer.observe(self.start.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn gauge_levels_and_high_water() {
        let g = Gauge::new();
        g.set(3);
        g.add(2);
        g.dec();
        assert_eq!(g.get(), 4);
        g.record_max(10);
        assert_eq!(g.get(), 10);
        g.record_max(7); // lower: no effect
        assert_eq!(g.get(), 10);
    }

    #[test]
    fn histogram_exact_below_window() {
        let h = Histogram::with_window(16);
        for v in [5u64, 1, 9, 3, 7] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.quantile(0.0), Some(1));
        assert_eq!(h.quantile(1.0), Some(9));
        assert_eq!(h.quantile(0.5), Some(5));
        let s = h.stats();
        assert_eq!((s.min, s.max, s.p50), (1, 9, 5));
    }

    #[test]
    fn histogram_window_retains_most_recent() {
        let h = Histogram::with_window(4);
        for v in 1..=10u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 10);
        let mut got = h.samples();
        got.sort_unstable();
        assert_eq!(got, vec![7, 8, 9, 10]);
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.stats().count, 0);
    }

    #[test]
    fn timer_records_spans() {
        let t = Timer::new();
        t.observe(Duration::from_nanos(100));
        t.observe_ns(300);
        {
            let _g = t.start();
        }
        assert_eq!(t.count(), 3);
        assert!(t.total_ns() >= 400);
        assert!(t.latency_stats().max >= 300);
    }
}
