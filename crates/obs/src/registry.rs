//! The metric registry and its deterministic snapshots.

use crate::json_escape;
use crate::metrics::{Counter, Gauge, Histogram, HistogramStats, Timer};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, OnceLock};

/// One registered metric (shared: hot paths hold the `Arc`, the registry
/// holds another for snapshotting).
#[derive(Clone, Debug)]
pub enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
    Timer(Arc<Timer>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
            Metric::Timer(_) => "timer",
        }
    }
}

/// A name → metric map.
///
/// Registration is idempotent: asking for `counter("x")` twice returns the
/// same `Arc`. Asking for a name that is already registered *as a
/// different kind* panics — that is always an instrumentation bug, and
/// silently returning a fresh metric would fork the data.
///
/// The registry itself is only locked during registration and snapshots;
/// metric updates never touch it.
#[derive(Default)]
pub struct Registry {
    entries: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// A fresh, empty registry (tests, scoped experiments).
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The process-wide registry all built-in instrumentation uses.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    fn get_or_insert<T>(
        &self,
        name: &str,
        make: impl FnOnce() -> Metric,
        unwrap: impl Fn(&Metric) -> Option<Arc<T>>,
    ) -> Arc<T> {
        let mut entries = self.entries.lock();
        let metric = entries.entry(name.to_string()).or_insert_with(make).clone();
        unwrap(&metric).unwrap_or_else(|| {
            panic!(
                "obs: metric {name:?} already registered as a {}",
                metric.kind()
            )
        })
    }

    /// Register (or fetch) a counter.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.get_or_insert(
            name,
            || Metric::Counter(Arc::new(Counter::new())),
            |m| match m {
                Metric::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
        )
    }

    /// Register (or fetch) a gauge.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.get_or_insert(
            name,
            || Metric::Gauge(Arc::new(Gauge::new())),
            |m| match m {
                Metric::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
        )
    }

    /// Register (or fetch) a histogram with the default window.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.get_or_insert(
            name,
            || Metric::Histogram(Arc::new(Histogram::new())),
            |m| match m {
                Metric::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
        )
    }

    /// Register (or fetch) a timer.
    pub fn timer(&self, name: &str) -> Arc<Timer> {
        self.get_or_insert(
            name,
            || Metric::Timer(Arc::new(Timer::new())),
            |m| match m {
                Metric::Timer(t) => Some(Arc::clone(t)),
                _ => None,
            },
        )
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// True iff nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }

    /// Reset every registered metric to its zero state (names stay
    /// registered) — used to baseline between benchmark phases.
    pub fn reset(&self) {
        for metric in self.entries.lock().values() {
            match metric {
                Metric::Counter(c) => c.reset(),
                Metric::Gauge(g) => g.reset(),
                Metric::Histogram(h) => h.reset(),
                Metric::Timer(t) => t.reset(),
            }
        }
    }

    /// Capture a point-in-time snapshot of every metric, sorted by name.
    pub fn snapshot(&self) -> Snapshot {
        let entries = self.entries.lock();
        let rows = entries
            .iter()
            .map(|(name, metric)| {
                let value = match metric {
                    Metric::Counter(c) => SnapshotValue::Counter(c.get()),
                    Metric::Gauge(g) => SnapshotValue::Gauge(g.get()),
                    Metric::Histogram(h) => SnapshotValue::Histogram(h.stats()),
                    Metric::Timer(t) => SnapshotValue::Timer {
                        count: t.count(),
                        total_ns: t.total_ns(),
                        latency: t.latency_stats(),
                    },
                };
                SnapshotRow {
                    name: name.clone(),
                    value,
                }
            })
            .collect();
        Snapshot { rows }
    }
}

/// A captured metric value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotValue {
    Counter(u64),
    Gauge(i64),
    Histogram(HistogramStats),
    Timer {
        count: u64,
        total_ns: u64,
        latency: HistogramStats,
    },
}

/// One `name = value` row of a snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapshotRow {
    pub name: String,
    pub value: SnapshotValue,
}

/// A deterministic point-in-time view of a [`Registry`]: rows sorted by
/// name, rendered identically on every call for identical state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    rows: Vec<SnapshotRow>,
}

impl Snapshot {
    /// The captured rows, sorted by metric name.
    pub fn rows(&self) -> &[SnapshotRow] {
        &self.rows
    }

    /// Look up a row by exact name.
    pub fn get(&self, name: &str) -> Option<&SnapshotValue> {
        self.rows
            .binary_search_by(|r| r.name.as_str().cmp(name))
            .ok()
            .map(|i| &self.rows[i].value)
    }

    /// A counter's value, if `name` is a counter in this snapshot.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            SnapshotValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// A gauge's value, if `name` is a gauge in this snapshot.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        match self.get(name)? {
            SnapshotValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// A timer's `(count, total_ns)`, if `name` is a timer here.
    pub fn timer(&self, name: &str) -> Option<(u64, u64)> {
        match self.get(name)? {
            SnapshotValue::Timer {
                count, total_ns, ..
            } => Some((*count, *total_ns)),
            _ => None,
        }
    }

    /// Render the snapshot as aligned, human-readable text. Deterministic:
    /// two renders of the same state are byte-identical.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let width = self.rows.iter().map(|r| r.name.len()).max().unwrap_or(0);
        for row in &self.rows {
            match &row.value {
                SnapshotValue::Counter(v) => {
                    let _ = writeln!(out, "counter    {:width$}  {v}", row.name);
                }
                SnapshotValue::Gauge(v) => {
                    let _ = writeln!(out, "gauge      {:width$}  {v}", row.name);
                }
                SnapshotValue::Histogram(s) => {
                    let _ = writeln!(
                        out,
                        "histogram  {:width$}  count={} min={} max={} p50={} p95={} p99={}",
                        row.name, s.count, s.min, s.max, s.p50, s.p95, s.p99
                    );
                }
                SnapshotValue::Timer {
                    count,
                    total_ns,
                    latency,
                } => {
                    let _ = writeln!(
                        out,
                        "timer      {:width$}  count={count} total_ns={total_ns} p50_ns={} p95_ns={} p99_ns={}",
                        row.name, latency.p50, latency.p95, latency.p99
                    );
                }
            }
        }
        out
    }

    /// Render the snapshot as a JSON object keyed by metric name
    /// (hand-rolled; the workspace has no serde). Deterministic for
    /// identical state.
    pub fn render_json(&self) -> String {
        let mut items: Vec<String> = Vec::with_capacity(self.rows.len());
        for row in &self.rows {
            let value = match &row.value {
                SnapshotValue::Counter(v) => {
                    format!("{{\"kind\": \"counter\", \"value\": {v}}}")
                }
                SnapshotValue::Gauge(v) => {
                    format!("{{\"kind\": \"gauge\", \"value\": {v}}}")
                }
                SnapshotValue::Histogram(s) => format!(
                    "{{\"kind\": \"histogram\", \"count\": {}, \"min\": {}, \"max\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
                    s.count, s.min, s.max, s.p50, s.p95, s.p99
                ),
                SnapshotValue::Timer { count, total_ns, latency } => format!(
                    "{{\"kind\": \"timer\", \"count\": {count}, \"total_ns\": {total_ns}, \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}}}",
                    latency.p50, latency.p95, latency.p99
                ),
            };
            items.push(format!("    \"{}\": {}", json_escape(&row.name), value));
        }
        if items.is_empty() {
            "{}".to_string()
        } else {
            format!("{{\n{}\n  }}", items.join(",\n"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_and_shared() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        assert_eq!(b.get(), 1);
        assert_eq!(r.len(), 1);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    fn snapshot_is_sorted_regardless_of_registration_order() {
        let r1 = Registry::new();
        r1.counter("b");
        r1.counter("a");
        let r2 = Registry::new();
        r2.counter("a");
        r2.counter("b");
        assert_eq!(r1.snapshot().render_text(), r2.snapshot().render_text());
        assert_eq!(r1.snapshot().render_json(), r2.snapshot().render_json());
        let snap = r1.snapshot();
        let got: Vec<String> = snap.rows().iter().map(|r| r.name.clone()).collect();
        assert_eq!(got, vec!["a", "b"]);
    }

    #[test]
    fn snapshot_accessors() {
        let r = Registry::new();
        r.counter("c").add(5);
        r.gauge("g").set(-2);
        r.timer("t").observe_ns(100);
        let s = r.snapshot();
        assert_eq!(s.counter("c"), Some(5));
        assert_eq!(s.gauge("g"), Some(-2));
        assert_eq!(s.timer("t"), Some((1, 100)));
        assert_eq!(s.counter("missing"), None);
        assert_eq!(s.counter("g"), None); // wrong kind
    }

    #[test]
    fn reset_zeroes_but_keeps_names() {
        let r = Registry::new();
        r.counter("c").add(5);
        r.histogram("h").record(9);
        r.reset();
        let s = r.snapshot();
        assert_eq!(s.counter("c"), Some(0));
        assert_eq!(s.rows().len(), 2);
    }

    #[test]
    fn json_is_wellformed_ish() {
        let r = Registry::new();
        r.counter("a.b").inc();
        r.histogram("h").record(3);
        let j = r.snapshot().render_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"a.b\": {\"kind\": \"counter\", \"value\": 1}"));
        assert!(j.contains("\"p99\": 3"));
        // Balanced braces (hand-rolled writer sanity).
        let opens = j.matches('{').count();
        let closes = j.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn empty_registry_renders_empty() {
        let r = Registry::new();
        assert_eq!(r.snapshot().render_text(), "");
        assert_eq!(r.snapshot().render_json(), "{}");
    }
}
