//! Integration tests for the observability crate (ISSUE 2 satellites):
//!
//! 1. `Counter` loses no increments under real thread contention —
//!    both as a tinyprop property over (threads, per-thread counts) and
//!    as a fixed heavy stress case.
//! 2. `Histogram` quantiles match a sorted-`Vec` nearest-rank oracle on
//!    arbitrary sample streams (within the retained window).
//! 3. `Snapshot` rendering is deterministic: two renders of the same
//!    registry state are byte-identical, in both text and JSON.

use obs::{Counter, Gauge, Histogram, Registry, DEFAULT_WINDOW};
use std::sync::Arc;
use tinyprop::prelude::*;

// ---------------------------------------------------------------------
// 1. Counter accuracy under contention
// ---------------------------------------------------------------------

/// Spawn `threads` threads, each incrementing `per_thread` times; the
/// final value must be exactly the product. Relaxed ordering is enough
/// for a monotone counter: `fetch_add` is still a single atomic RMW.
fn hammer_counter(threads: usize, per_thread: u64) -> u64 {
    let counter = Arc::new(Counter::new());
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let c = Arc::clone(&counter);
            std::thread::spawn(move || {
                for _ in 0..per_thread {
                    c.inc();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    counter.get()
}

proptest! {
    #[test]
    fn counter_exact_under_contention(
        threads in 1usize..8,
        per_thread in 0u64..2_000,
    ) {
        prop_assert_eq!(
            hammer_counter(threads, per_thread),
            threads as u64 * per_thread
        );
    }

    /// `add` and `inc` mix without losing updates either.
    #[test]
    fn counter_mixed_add_inc(
        threads in 1usize..6,
        per_thread in 0u64..1_000,
        bump in 1u64..5,
    ) {
        let counter = Arc::new(Counter::new());
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let c = Arc::clone(&counter);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        if i % 2 == 0 { c.inc() } else { c.add(bump) }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let evens = per_thread.div_ceil(2); // i % 2 == 0 count
        let odds = per_thread - evens;
        prop_assert_eq!(counter.get(), threads as u64 * (evens + odds * bump));
    }
}

/// A fixed heavy case beyond the property sizes: 16 threads x 100k.
#[test]
fn counter_stress_16x100k() {
    assert_eq!(hammer_counter(16, 100_000), 1_600_000);
}

/// `Gauge::record_max` converges to the true maximum under contention.
#[test]
fn gauge_record_max_stress() {
    let gauge = Arc::new(Gauge::new());
    let handles: Vec<_> = (0..8)
        .map(|t| {
            let g = Arc::clone(&gauge);
            std::thread::spawn(move || {
                for i in 0..50_000i64 {
                    g.record_max((i * 8 + t) % 99_991);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    // Max over all (i*8 + t) % 99991 for i in 0..50k, t in 0..8 is 99990.
    assert_eq!(gauge.get(), 99_990);
}

// ---------------------------------------------------------------------
// 2. Histogram quantiles vs a sorted-vec oracle
// ---------------------------------------------------------------------

/// Nearest-rank oracle: sort the retained window and index at
/// `Histogram::rank(q, n)` — the same definition the crate documents.
fn oracle_quantile(window: &[u64], q: f64) -> Option<u64> {
    if window.is_empty() {
        return None;
    }
    let mut sorted = window.to_vec();
    sorted.sort_unstable();
    Some(sorted[Histogram::rank(q, sorted.len())])
}

proptest! {
    #[test]
    fn histogram_matches_sorted_vec_oracle(
        samples in prop::collection::vec(any::<u64>(), 0..200),
        window in 1usize..64,
        q_millis in 0u64..=1_000,
    ) {
        let q = q_millis as f64 / 1_000.0;
        let hist = Histogram::with_window(window);
        for &s in &samples {
            hist.record(s);
        }
        // The histogram retains the most recent `window` samples.
        let start = samples.len().saturating_sub(window);
        let retained = &samples[start..];
        prop_assert_eq!(hist.quantile(q), oracle_quantile(retained, q));
        prop_assert_eq!(hist.count(), samples.len() as u64);
    }

    /// The stats bundle agrees with the oracle at its three quantiles.
    #[test]
    fn histogram_stats_matches_oracle(
        samples in prop::collection::vec(0u64..10_000, 1..150),
    ) {
        let hist = Histogram::new();
        for &s in &samples {
            hist.record(s);
        }
        let start = samples.len().saturating_sub(DEFAULT_WINDOW);
        let retained = &samples[start..];
        let stats = hist.stats();
        prop_assert_eq!(Some(stats.p50), oracle_quantile(retained, 0.50));
        prop_assert_eq!(Some(stats.p95), oracle_quantile(retained, 0.95));
        prop_assert_eq!(Some(stats.p99), oracle_quantile(retained, 0.99));
        prop_assert_eq!(Some(stats.min), retained.iter().copied().min());
        prop_assert_eq!(Some(stats.max), retained.iter().copied().max());
    }
}

/// Concurrent recording never loses counts and every retained sample is
/// one that was actually recorded.
#[test]
fn histogram_concurrent_record() {
    let hist = Arc::new(Histogram::with_window(256));
    let handles: Vec<_> = (0..4)
        .map(|t| {
            let h = Arc::clone(&hist);
            std::thread::spawn(move || {
                for i in 0..10_000u64 {
                    h.record(t * 100_000 + i);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(hist.count(), 40_000);
    for s in hist.samples() {
        let t = s / 100_000;
        let i = s % 100_000;
        assert!(t < 4 && i < 10_000, "sample {s} was never recorded");
    }
}

// ---------------------------------------------------------------------
// 3. Snapshot determinism
// ---------------------------------------------------------------------

/// Build a private registry (not the global one — other tests run in
/// this process), populate every metric kind, and require two renders to
/// be byte-identical in both formats.
#[test]
fn snapshot_renders_are_deterministic() {
    let reg = Registry::new();
    reg.counter("z.counter").add(41);
    reg.counter("a.counter").inc();
    reg.gauge("m.gauge").set(-7);
    let h = reg.histogram("h.hist");
    for v in [5u64, 1, 9, 2, 2, 8] {
        h.record(v);
    }
    let t = reg.timer("t.timer");
    t.observe_ns(1_500);
    t.observe_ns(2_500);

    let snap1 = reg.snapshot();
    let snap2 = reg.snapshot();
    assert_eq!(snap1.render_text(), snap2.render_text());
    assert_eq!(snap1.render_json(), snap2.render_json());
    // Rendering the SAME snapshot twice is also stable.
    assert_eq!(snap1.render_text(), snap1.render_text());
    assert_eq!(snap1.render_json(), snap1.render_json());

    // Names come out sorted regardless of registration order.
    let names: Vec<&str> = snap1.rows().iter().map(|r| r.name.as_str()).collect();
    let mut sorted = names.clone();
    sorted.sort_unstable();
    assert_eq!(names, sorted);
    assert_eq!(
        names,
        vec!["a.counter", "h.hist", "m.gauge", "t.timer", "z.counter"]
    );
}

/// JSON output parses structurally: balanced braces, no trailing commas,
/// every registered name quoted exactly once as a key.
#[test]
fn snapshot_json_shape() {
    let reg = Registry::new();
    reg.counter("only.one").add(3);
    let json = reg.snapshot().render_json();
    assert!(json.trim_start().starts_with('{') && json.trim_end().ends_with('}'));
    assert_eq!(json.matches("\"only.one\"").count(), 1);
    assert!(!json.contains(",\n}"), "trailing comma in: {json}");
    assert_eq!(
        json.matches('{').count(),
        json.matches('}').count(),
        "unbalanced braces in: {json}"
    );
}
