//! Instrumentation points for the map-reduce layer (`obs` feature only).
//!
//! Shared process-wide metric family in the global [`obs::Registry`];
//! see `blockingq::stats` for the design rationale.

use std::sync::{Arc, OnceLock};

/// Metrics for [`crate::DataParallel`] / [`crate::Pipeline`].
pub(crate) struct MapReduceStats {
    /// Chunks submitted to the pool by map-reduce launches.
    pub chunks: Arc<obs::Counter>,
    /// Time spent draining + chunking the source and submitting tasks
    /// (the serial prefix of every map-reduce run).
    pub launch: Arc<obs::Timer>,
    /// Per-chunk map(+reduce) work on pool workers.
    pub chunk_run: Arc<obs::Timer>,
    /// Threaded pipeline stages constructed.
    pub pipeline_stages: Arc<obs::Counter>,
}

pub(crate) fn mr() -> &'static MapReduceStats {
    static STATS: OnceLock<MapReduceStats> = OnceLock::new();
    STATS.get_or_init(|| MapReduceStats {
        chunks: obs::counter("mapreduce.chunks"),
        launch: obs::timer("mapreduce.launch"),
        chunk_run: obs::timer("mapreduce.chunk_run"),
        pipeline_stages: obs::counter("mapreduce.pipeline.stages"),
    })
}
