//! The `DataParallel` class of Fig. 4.

use exec::{Task, ThreadPool};
use gde::{BoxGen, Gen, Step, Value};
use std::collections::VecDeque;
use std::sync::Arc;

type MapFn = Arc<dyn Fn(&Value) -> Option<Value> + Send + Sync>;
type ReduceFn = Arc<dyn Fn(Value, Value) -> Option<Value> + Send + Sync>;

/// Data-parallel map-reduce over chunks of a source generator.
///
/// Mirrors Fig. 4's `DataParallel(int size)` class: the source is split
/// into chunks of `chunk_size`; each chunk becomes a task on a thread pool
/// ("thread creation and allocation leverage Java's facilities for thread
/// pool management"); results come back *in chunk order* — the paper notes
/// its formulation "is subtly different from conventional map-reduce in
/// that it enforces ordering between the results of the partitioned
/// threads".
pub struct DataParallel {
    chunk_size: usize,
    pool: Arc<ThreadPool>,
}

impl DataParallel {
    /// `new DataParallel(1000)` with a dedicated pool sized to the cores.
    pub fn new(chunk_size: usize) -> DataParallel {
        let n = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4);
        DataParallel::with_pool(chunk_size, Arc::new(ThreadPool::new(n)))
    }

    /// Use a caller-provided pool (shared across operations, or sized for
    /// a scaling experiment).
    pub fn with_pool(chunk_size: usize, pool: Arc<ThreadPool>) -> DataParallel {
        assert!(chunk_size > 0, "chunk size must be positive");
        DataParallel { chunk_size, pool }
    }

    /// The configured chunk size.
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    /// `mapReduce(f, s, r, i)`: map `f` over each chunk's elements and fold
    /// the surviving results with `r` from `i`; yields one reduced value
    /// per chunk, in order. Elements on which `f` fails are skipped, as are
    /// reduction steps on which `r` fails (both match the `every
    /// (x=r(x,f(!c)))` loop, where failure simply produces no assignment).
    pub fn map_reduce(
        &self,
        map: impl Fn(&Value) -> Option<Value> + Send + Sync + 'static,
        source: impl Gen + 'static,
        reduce: impl Fn(Value, Value) -> Option<Value> + Send + Sync + 'static,
        init: Value,
    ) -> MapReduceGen {
        MapReduceGen {
            source: Box::new(source),
            chunk_size: self.chunk_size,
            pool: Arc::clone(&self.pool),
            map: Arc::new(map),
            reduce: Some((Arc::new(reduce), init)),
            tasks: None,
            current: VecDeque::new(),
        }
    }

    /// The data-parallel (map-only) variant: maps `f` over each chunk in a
    /// parallel task but yields every mapped element, flattened in order —
    /// "splitting out the reduction and effecting serialization" (Sec. VII).
    pub fn map_flat(
        &self,
        map: impl Fn(&Value) -> Option<Value> + Send + Sync + 'static,
        source: impl Gen + 'static,
    ) -> MapReduceGen {
        MapReduceGen {
            source: Box::new(source),
            chunk_size: self.chunk_size,
            pool: Arc::clone(&self.pool),
            map: Arc::new(map),
            reduce: None,
            tasks: None,
            current: VecDeque::new(),
        }
    }
}

/// The generator returned by [`DataParallel::map_reduce`] /
/// [`DataParallel::map_flat`].
///
/// Launch is lazy: the first `resume` drains the source, spawns one pool
/// task per chunk, and then yields task results in order (each task's
/// output is one value for map-reduce, a list of values for map-flat).
/// Restarting restarts the source and relaunches.
pub struct MapReduceGen {
    source: BoxGen,
    chunk_size: usize,
    pool: Arc<ThreadPool>,
    map: MapFn,
    reduce: Option<(ReduceFn, Value)>,
    tasks: Option<VecDeque<Task<Vec<Value>>>>,
    current: VecDeque<Value>,
}

impl MapReduceGen {
    fn launch(&mut self) {
        obs_on!(let _launch_span = crate::stats::mr().launch.start(););
        let mut tasks = VecDeque::new();
        // Chunk the source inline (the chunks() combinator wants ownership,
        // but the source must stay in self for restart).
        loop {
            let mut buf = Vec::with_capacity(self.chunk_size);
            let mut source_done = false;
            while buf.len() < self.chunk_size {
                match self.source.resume() {
                    Step::Suspend(v) => buf.push(v),
                    Step::Fail => {
                        source_done = true;
                        break;
                    }
                }
            }
            if !buf.is_empty() {
                let chunk = Value::list(buf);
                let map = Arc::clone(&self.map);
                let reduce = self
                    .reduce
                    .as_ref()
                    .map(|(r, i)| (Arc::clone(r), i.clone()));
                obs_on!(crate::stats::mr().chunks.inc(););
                // try_submit: a shut-down (global) pool degrades to
                // inline execution instead of panicking mid-launch.
                tasks.push_back(
                    match self
                        .pool
                        .try_submit(move || run_chunk(&chunk, &map, reduce))
                    {
                        Ok(task) => task,
                        Err(rejected) => rejected.run_inline(),
                    },
                );
            }
            if source_done {
                break;
            }
        }
        self.tasks = Some(tasks);
    }
}

fn run_chunk(chunk: &Value, map: &MapFn, reduce: Option<(ReduceFn, Value)>) -> Vec<Value> {
    obs_on!(let _chunk_span = crate::stats::mr().chunk_run.start(););
    let items = chunk.as_list().expect("chunks yield lists").lock().clone();
    match reduce {
        Some((r, init)) => {
            // |> { var x=i; every (x = r(x, f(!c))); x }
            let mut x = init;
            for item in &items {
                if let Some(mapped) = map(item) {
                    if let Some(next) = r(x.clone(), mapped) {
                        x = next;
                    }
                }
            }
            vec![x]
        }
        None => items.iter().filter_map(|item| map(item)).collect(),
    }
}

impl Gen for MapReduceGen {
    fn resume(&mut self) -> Step {
        if self.tasks.is_none() {
            self.launch();
        }
        loop {
            if let Some(v) = self.current.pop_front() {
                return Step::Suspend(v);
            }
            let tasks = self.tasks.as_mut().expect("launched above");
            match tasks.pop_front() {
                Some(t) => self.current = t.join().into(),
                None => return Step::Fail,
            }
        }
    }

    fn restart(&mut self) {
        self.source.restart();
        self.tasks = None;
        self.current.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gde::comb::{fail, to_range};
    use gde::{ops, GenExt};

    fn sum_reduce(a: Value, b: Value) -> Option<Value> {
        ops::add(&a, &b)
    }

    #[test]
    fn map_reduce_sums_per_chunk() {
        let dp = DataParallel::new(3);
        let mut g = dp.map_reduce(
            |v| Some(v.clone()),
            to_range(1, 9, 1),
            sum_reduce,
            Value::from(0),
        );
        let sums: Vec<i64> = g
            .collect_values()
            .iter()
            .map(|v| v.as_int().unwrap())
            .collect();
        // chunks [1,2,3], [4,5,6], [7,8,9]
        assert_eq!(sums, vec![6, 15, 24]);
    }

    #[test]
    fn total_matches_sequential() {
        let dp = DataParallel::new(7);
        let mut g = dp.map_reduce(
            |v| ops::mul(v, v),
            to_range(1, 100, 1),
            sum_reduce,
            Value::from(0),
        );
        let total: i64 = g.collect_values().iter().map(|v| v.as_int().unwrap()).sum();
        let expect: i64 = (1..=100).map(|i| i * i).sum();
        assert_eq!(total, expect);
    }

    #[test]
    fn map_failures_are_skipped() {
        let dp = DataParallel::new(4);
        let mut g = dp.map_reduce(
            |v| {
                let n = v.as_int()?;
                if n % 2 == 0 {
                    Some(v.clone())
                } else {
                    None
                }
            },
            to_range(1, 8, 1),
            sum_reduce,
            Value::from(0),
        );
        let sums: Vec<i64> = g
            .collect_values()
            .iter()
            .map(|v| v.as_int().unwrap())
            .collect();
        // chunk [1..4] evens sum 6; chunk [5..8] evens sum 14.
        assert_eq!(sums, vec![6, 14]);
    }

    #[test]
    fn map_flat_preserves_order_and_skips_failures() {
        let dp = DataParallel::new(3);
        let mut g = dp.map_flat(
            |v| {
                let n = v.as_int()?;
                if n == 5 {
                    None
                } else {
                    Some(Value::from(n * 10))
                }
            },
            to_range(1, 7, 1),
        );
        let vals: Vec<i64> = g
            .collect_values()
            .iter()
            .map(|v| v.as_int().unwrap())
            .collect();
        assert_eq!(vals, vec![10, 20, 30, 40, 60, 70]);
    }

    #[test]
    fn empty_source_yields_nothing() {
        let dp = DataParallel::new(10);
        let mut g = dp.map_reduce(|v| Some(v.clone()), fail(), sum_reduce, Value::from(0));
        assert_eq!(g.resume(), Step::Fail);
    }

    #[test]
    fn restart_relaunches() {
        let dp = DataParallel::new(2);
        let mut g = dp.map_reduce(
            |v| Some(v.clone()),
            to_range(1, 4, 1),
            sum_reduce,
            Value::from(0),
        );
        assert_eq!(g.count(), 2);
        g.restart();
        let sums: Vec<i64> = g
            .collect_values()
            .iter()
            .map(|v| v.as_int().unwrap())
            .collect();
        assert_eq!(sums, vec![3, 7]);
    }

    #[test]
    fn shared_pool_across_operations() {
        let pool = Arc::new(ThreadPool::new(2));
        let dp1 = DataParallel::with_pool(5, Arc::clone(&pool));
        let dp2 = DataParallel::with_pool(5, pool);
        let s1: i64 = dp1
            .map_reduce(
                |v| Some(v.clone()),
                to_range(1, 10, 1),
                sum_reduce,
                Value::from(0),
            )
            .collect_values()
            .iter()
            .map(|v| v.as_int().unwrap())
            .sum();
        let s2: i64 = dp2
            .map_reduce(
                |v| Some(v.clone()),
                to_range(1, 10, 1),
                sum_reduce,
                Value::from(0),
            )
            .collect_values()
            .iter()
            .map(|v| v.as_int().unwrap())
            .sum();
        assert_eq!(s1, 55);
        assert_eq!(s2, 55);
    }

    #[test]
    fn reduce_failure_keeps_accumulator() {
        let dp = DataParallel::new(10);
        // Reduction fails on values > 3: they are ignored.
        let mut g = dp.map_reduce(
            |v| Some(v.clone()),
            to_range(1, 5, 1),
            |acc, v| {
                if v.as_int()? > 3 {
                    None
                } else {
                    ops::add(&acc, &v)
                }
            },
            Value::from(0),
        );
        let sums: Vec<i64> = g
            .collect_values()
            .iter()
            .map(|v| v.as_int().unwrap())
            .collect();
        assert_eq!(sums, vec![6]); // 1+2+3, with 4 and 5 rejected
    }
}
