//! Parallel pipelines: the fixed-code model of Fig. 2.
//!
//! A pipeline "consists of a chain of tasks where the output of each
//! element is the input of the next, synchronized using some form of
//! blocking queues" (Sec. III.B). Each [`Pipeline::stage`] corresponds to
//! the expression `f(! |> s)`: the accumulated upstream chain `s` is moved
//! onto its own producer thread via a [`pipes::Pipe`], and `f` is mapped
//! over the piped results in the downstream thread.

use gde::comb::filter_map;
use gde::{BoxGen, Value};
use pipes::Pipe;
use std::sync::Arc;

type SourceFactory = Arc<dyn Fn() -> BoxGen + Send + Sync>;

/// Builder for a chain of threaded generator stages.
///
/// ```
/// use gde::{GenExt, Value, comb::to_range};
/// use mapreduce::Pipeline;
///
/// // 1..=4, squared on one thread, then incremented downstream.
/// let mut g = Pipeline::from(|| Box::new(to_range(1, 4, 1)) as gde::BoxGen)
///     .stage(|v| gde::ops::mul(v, v))
///     .stage(|v| gde::ops::add(v, &Value::from(1)))
///     .build();
/// let out: Vec<i64> = g.collect_values().iter().map(|v| v.as_int().unwrap()).collect();
/// assert_eq!(out, vec![2, 5, 10, 17]);
/// ```
pub struct Pipeline {
    source: SourceFactory,
    capacity: usize,
    batch: usize,
    stages: usize,
}

impl Pipeline {
    /// Start a pipeline from a source generator factory (re-invoked if the
    /// built generator is restarted).
    pub fn from(source: impl Fn() -> BoxGen + Send + Sync + 'static) -> Pipeline {
        Pipeline {
            source: Arc::new(source),
            capacity: pipes::DEFAULT_CAPACITY,
            batch: pipes::DEFAULT_BATCH,
            stages: 0,
        }
    }

    /// Set the blocking-queue capacity used by subsequently added stages.
    pub fn with_capacity(mut self, capacity: usize) -> Pipeline {
        self.capacity = capacity;
        self
    }

    /// Set the transport batch used by subsequently added stages: each
    /// inter-stage hop moves up to this many values per queue transaction
    /// (clamped to the stage capacity by the pipe; `1` = item-at-a-time).
    pub fn with_batch(mut self, batch: usize) -> Pipeline {
        self.batch = batch.max(1);
        self
    }

    /// Append a stage `f(! |> s)`: everything built so far runs on its own
    /// thread; `f` maps (with goal-directed failure filtering) over the
    /// piped results, which cross the stage boundary in chunks of up to
    /// the configured batch.
    pub fn stage(self, f: impl Fn(&Value) -> Option<Value> + Send + Sync + 'static) -> Pipeline {
        let upstream = Arc::clone(&self.source);
        let capacity = self.capacity;
        let batch = self.batch;
        let f = Arc::new(f);
        obs_on!(crate::stats::mr().pipeline_stages.inc(););
        Pipeline {
            source: Arc::new(move || {
                let upstream = Arc::clone(&upstream);
                let pipe = Pipe::batched(move || upstream(), capacity, batch);
                let f = Arc::clone(&f);
                Box::new(filter_map(pipe, move |v| f(v)))
            }),
            capacity,
            batch,
            stages: self.stages + 1,
        }
    }

    /// Number of threaded stages added so far.
    pub fn stages(&self) -> usize {
        self.stages
    }

    /// Materialize the pipeline as a generator. The final stage's map runs
    /// on the consumer's thread; each earlier hop runs on its own producer
    /// thread.
    pub fn build(self) -> BoxGen {
        (self.source)()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gde::comb::to_range;
    use gde::{ops, GenExt};

    fn ints(vals: Vec<Value>) -> Vec<i64> {
        vals.iter().map(|v| v.as_int().unwrap()).collect()
    }

    #[test]
    fn single_stage_matches_sequential() {
        let mut g = Pipeline::from(|| Box::new(to_range(1, 20, 1)) as BoxGen)
            .stage(|v| ops::mul(v, v))
            .build();
        assert_eq!(
            ints(g.collect_values()),
            (1..=20).map(|i| i * i).collect::<Vec<_>>()
        );
    }

    #[test]
    fn three_stages_compose_in_order() {
        let mut g = Pipeline::from(|| Box::new(to_range(1, 5, 1)) as BoxGen)
            .stage(|v| ops::add(v, &Value::from(100)))
            .stage(|v| ops::mul(v, &Value::from(2)))
            .stage(|v| ops::sub(v, &Value::from(1)))
            .build();
        assert_eq!(ints(g.collect_values()), vec![201, 203, 205, 207, 209]);
    }

    #[test]
    fn stage_failures_filter() {
        let mut g = Pipeline::from(|| Box::new(to_range(1, 10, 1)) as BoxGen)
            .stage(|v| {
                let n = v.as_int()?;
                if n % 3 == 0 {
                    Some(v.clone())
                } else {
                    None
                }
            })
            .stage(|v| ops::mul(v, &Value::from(10)))
            .build();
        assert_eq!(ints(g.collect_values()), vec![30, 60, 90]);
    }

    #[test]
    fn restart_reruns_the_whole_chain() {
        let mut g = Pipeline::from(|| Box::new(to_range(1, 3, 1)) as BoxGen)
            .stage(|v| Some(v.clone()))
            .build();
        assert_eq!(g.count(), 3);
        g.restart();
        assert_eq!(ints(g.collect_values()), vec![1, 2, 3]);
    }

    #[test]
    fn stage_count_tracks() {
        let p = Pipeline::from(|| Box::new(to_range(1, 2, 1)) as BoxGen)
            .stage(|v| Some(v.clone()))
            .stage(|v| Some(v.clone()));
        assert_eq!(p.stages(), 2);
    }

    #[test]
    fn batch_sizes_do_not_change_results() {
        for batch in [1, 2, 7, 64] {
            let mut g = Pipeline::from(|| Box::new(to_range(1, 40, 1)) as BoxGen)
                .with_batch(batch)
                .stage(|v| ops::mul(v, v))
                .stage(|v| ops::add(v, &Value::from(1)))
                .build();
            assert_eq!(
                ints(g.collect_values()),
                (1..=40).map(|i| i * i + 1).collect::<Vec<_>>(),
                "batch {batch} changed the pipeline output"
            );
        }
    }

    #[test]
    fn tiny_capacity_still_correct() {
        let mut g = Pipeline::from(|| Box::new(to_range(1, 50, 1)) as BoxGen)
            .with_capacity(1)
            .stage(|v| ops::add(v, &Value::from(1)))
            .stage(|v| ops::add(v, &Value::from(1)))
            .build();
        assert_eq!(ints(g.collect_values()), (3..=52).collect::<Vec<_>>());
    }
}
