//! Partitioning a generator into fixed-size chunks.

use gde::{BoxGen, Gen, Step, Value};

/// `chunk(e)` from Fig. 4: a generator of lists, each holding up to
/// `size` consecutive results of `inner`; the final chunk may be short.
/// An empty source yields no chunks.
///
/// # Panics
/// Panics if `size` is zero.
pub fn chunks(inner: impl Gen + 'static, size: usize) -> Chunks {
    assert!(size > 0, "chunk size must be positive");
    Chunks {
        inner: Box::new(inner),
        size,
        exhausted: false,
    }
}

pub struct Chunks {
    inner: BoxGen,
    size: usize,
    exhausted: bool,
}

impl Gen for Chunks {
    fn resume(&mut self) -> Step {
        if self.exhausted {
            return Step::Fail;
        }
        let mut buf = Vec::with_capacity(self.size);
        while buf.len() < self.size {
            match self.inner.resume() {
                Step::Suspend(v) => buf.push(v),
                Step::Fail => {
                    self.exhausted = true;
                    break;
                }
            }
        }
        if buf.is_empty() {
            Step::Fail
        } else {
            Step::Suspend(Value::list(buf))
        }
    }

    fn restart(&mut self) {
        self.inner.restart();
        self.exhausted = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gde::comb::{fail, to_range};
    use gde::GenExt;

    fn chunk_sizes(g: &mut dyn Gen) -> Vec<usize> {
        g.collect_values()
            .iter()
            .map(|v| v.size().unwrap() as usize)
            .collect()
    }

    #[test]
    fn even_division() {
        let mut g = chunks(to_range(1, 9, 1), 3);
        assert_eq!(chunk_sizes(&mut g), vec![3, 3, 3]);
    }

    #[test]
    fn trailing_short_chunk() {
        let mut g = chunks(to_range(1, 10, 1), 4);
        assert_eq!(chunk_sizes(&mut g), vec![4, 4, 2]);
    }

    #[test]
    fn chunk_contents_preserve_order() {
        let mut g = chunks(to_range(1, 5, 1), 2);
        let lists = g.collect_values();
        let flat: Vec<i64> = lists
            .iter()
            .flat_map(|l| {
                l.as_list()
                    .unwrap()
                    .lock()
                    .iter()
                    .map(|v| v.as_int().unwrap())
                    .collect::<Vec<_>>()
            })
            .collect();
        assert_eq!(flat, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn empty_source_yields_nothing() {
        let mut g = chunks(fail(), 10);
        assert_eq!(g.resume(), Step::Fail);
    }

    #[test]
    fn source_smaller_than_one_chunk() {
        let mut g = chunks(to_range(1, 2, 1), 100);
        assert_eq!(chunk_sizes(&mut g), vec![2]);
    }

    #[test]
    fn restart_rechunks() {
        let mut g = chunks(to_range(1, 4, 1), 2);
        assert_eq!(chunk_sizes(&mut g), vec![2, 2]);
        g.restart();
        assert_eq!(chunk_sizes(&mut g), vec![2, 2]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_chunk_size_panics() {
        chunks(fail(), 0);
    }
}
