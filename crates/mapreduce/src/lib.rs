//! Higher-order concurrency abstractions built from concurrent generators.
//!
//! Fig. 4 of the paper builds map-reduce *as a library* on top of the
//! calculus: `chunk` partitions a source generator into fixed-size lists,
//! and `mapReduce` spawns, for each chunk, a threaded task that maps a
//! function over the chunk's elements and reduces the results, finally
//! yielding each task's reduction in order:
//!
//! ```text
//! def mapReduce(f,s,r,i) {
//!     var c, t, tasks = [];
//!     every (c = chunk(<>s)) do {
//!         t = |> { var x=i; every (x=r(x, f(!c) )); x };
//!         ((List) tasks)::add(t);
//!     };
//!     suspend ! (! tasks);
//! }
//! ```
//!
//! This crate provides that construction ([`DataParallel::map_reduce`]),
//! the map-only variant that "splits out the reduction and effects
//! serialization" ([`DataParallel::map_flat`]), the [`chunks`] combinator,
//! and a [`Pipeline`] builder for the fixed-code model (`f(!|>s)`) that
//! Fig. 2 contrasts with the fixed-data model.

/// Expands its body only when the `obs` feature is on (see the identical
/// shim in `blockingq`): instrumentation sites vanish entirely when
/// observability is disabled.
#[cfg(feature = "obs")]
macro_rules! obs_on {
    ($($body:tt)*) => { $($body)* };
}
#[cfg(not(feature = "obs"))]
macro_rules! obs_on {
    ($($body:tt)*) => {};
}

mod chunk;
mod data_parallel;
mod pipeline;
#[cfg(feature = "obs")]
mod stats;

pub use chunk::{chunks, Chunks};
pub use data_parallel::DataParallel;
pub use pipeline::Pipeline;
