//! Measures the cost of the `obs` instrumentation on the hottest runtime
//! path (blockingq put/take), plus the raw cost of the obs primitives.
//!
//! Run twice and compare:
//!
//! ```text
//! cargo bench -p bench --bench obs_overhead                         # obs ON
//! cargo bench -p bench --no-default-features --bench obs_overhead   # obs OFF
//! ```
//!
//! With the feature off, the instrumentation macro expands to nothing, so
//! `queue_put_take` must match current-main performance exactly — that is
//! the "no measurable regression" acceptance gate, and `scripts/ci.sh`
//! prints both numbers side by side.

use blockingq::BlockingQueue;
use criterion::{criterion_group, criterion_main, Criterion};

fn queue_put_take(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_overhead");
    group.bench_function("queue_put_take", |b| {
        let q: BlockingQueue<u64> = BlockingQueue::bounded(64);
        b.iter(|| {
            q.put(std::hint::black_box(1)).unwrap();
            std::hint::black_box(q.take());
        });
    });
    group.bench_function("mvar_put_take", |b| {
        let m = blockingq::MVar::empty();
        b.iter(|| {
            m.put(std::hint::black_box(7u64));
            std::hint::black_box(m.take());
        });
    });
    group.finish();
}

#[cfg(feature = "obs")]
fn primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_primitives");
    group.bench_function("counter_inc", |b| {
        let counter = obs::Counter::new();
        b.iter(|| counter.inc());
    });
    group.bench_function("gauge_record_max", |b| {
        let gauge = obs::Gauge::new();
        let mut i = 0i64;
        b.iter(|| {
            i += 1;
            gauge.record_max(std::hint::black_box(i % 128));
        });
    });
    group.bench_function("histogram_record", |b| {
        let hist = obs::Histogram::new();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            hist.record(std::hint::black_box(i));
        });
    });
    group.finish();
}

#[cfg(not(feature = "obs"))]
fn primitives(_c: &mut Criterion) {}

criterion_group!(benches, queue_put_take, primitives);
criterion_main!(benches);
