//! Ablation A (Sec. III.B): "bounding the output queue buffer size can
//! also be used to throttle a threaded co-expression" — pipeline throughput
//! as a function of the blocking-queue capacity, for both suites.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use wordcount::{embedded, native, Corpus, Weight};

fn queue_capacity_sweep(c: &mut Criterion) {
    let corpus = Corpus::generate(400, 10, 7);
    let mut group = c.benchmark_group("ablation/queue_capacity");
    group.sample_size(10);
    for capacity in [1usize, 4, 16, 64, 256, 1024] {
        group.bench_with_input(
            BenchmarkId::new("native_pipeline", capacity),
            &capacity,
            |b, &cap| {
                b.iter(|| {
                    black_box(native::pipeline_with_capacity(
                        corpus.lines(),
                        Weight::Light,
                        cap,
                    ))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("embedded_pipeline", capacity),
            &capacity,
            |b, &cap| {
                b.iter(|| {
                    black_box(embedded::pipeline_with_capacity(
                        &corpus,
                        Weight::Light,
                        cap,
                    ))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, queue_capacity_sweep);
criterion_main!(benches);
