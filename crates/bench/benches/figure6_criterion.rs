//! Criterion version of Fig. 6: every (suite, variant) cell at both
//! weights, for statistically disciplined per-cell timings (the JMH
//! analogue).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use wordcount::{run_cell, Corpus, Suite, Variant, Weight};

fn figure6_lightweight(c: &mut Criterion) {
    let corpus = Corpus::generate(500, 10, 2016);
    let mut group = c.benchmark_group("figure6/lightweight");
    group.sample_size(10);
    for suite in [Suite::Embedded, Suite::Native] {
        for variant in Variant::ALL {
            group.bench_with_input(
                BenchmarkId::new(suite.name(), variant.name()),
                &(suite, variant),
                |b, &(suite, variant)| {
                    b.iter(|| black_box(run_cell(suite, variant, &corpus, Weight::Light)))
                },
            );
        }
    }
    group.finish();
}

fn figure6_heavyweight(c: &mut Criterion) {
    let corpus = Corpus::generate(30, 10, 2016);
    let mut group = c.benchmark_group("figure6/heavyweight");
    group.sample_size(10);
    for suite in [Suite::Embedded, Suite::Native] {
        for variant in Variant::ALL {
            group.bench_with_input(
                BenchmarkId::new(suite.name(), variant.name()),
                &(suite, variant),
                |b, &(suite, variant)| {
                    b.iter(|| black_box(run_cell(suite, variant, &corpus, Weight::Heavy)))
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, figure6_lightweight, figure6_heavyweight);
criterion_main!(benches);
