//! Stage-fusion ablation: what does collapsing a combinator chain into a
//! single composed closure actually buy on the embedded hot path?
//!
//! Two pairs, fused vs unfused:
//!
//! * a synthetic chain of monogenic stages over a plain range — isolates
//!   the per-value resume cost (each unfused node is one `Step` climb per
//!   value, the fused node is one climb total);
//! * the real embedded-wordcount sequential cell — the Fig. 6 bar the
//!   emit-time fusion is meant to move (`sequential` builds the fused
//!   plan, `sequential_unfused` keeps the stage-per-node reference tree).

use criterion::{criterion_group, criterion_main, Criterion};
use gde::comb::fuse::StagePlan;
use gde::comb::{filter_map, to_range};
use gde::{BoxGen, GenExt, Value};
use std::hint::black_box;
use wordcount::{embedded, Corpus, Weight};

const N: i64 = 50_000;
const STAGES: usize = 6;

fn monogenic_plan() -> StagePlan {
    let mut plan = StagePlan::new();
    for k in 0..STAGES as i64 {
        plan = plan.filter_map(move |v: &Value| {
            let n = v.as_int()?;
            (n % 97 != k).then(|| Value::from(n + 1))
        });
    }
    plan
}

fn chain_fused(c: &mut Criterion) {
    let fused = monogenic_plan().fuse();
    c.bench_function("fusion/chain_fused", |b| {
        b.iter(|| {
            let mut g = fused.instantiate(Box::new(to_range(1, N, 1)));
            black_box(g.count())
        })
    });
}

fn chain_unfused(c: &mut Criterion) {
    c.bench_function("fusion/chain_unfused", |b| {
        b.iter(|| {
            let mut g: BoxGen = Box::new(to_range(1, N, 1));
            for k in 0..STAGES as i64 {
                g = Box::new(filter_map(g, move |v| {
                    let n = v.as_int()?;
                    (n % 97 != k).then(|| Value::from(n + 1))
                }));
            }
            black_box(g.count())
        })
    });
}

fn wordcount_pair(c: &mut Criterion) {
    let corpus = Corpus::generate(400, 10, 2016);
    c.bench_function("fusion/wordcount_fused", |b| {
        b.iter(|| black_box(embedded::sequential(&corpus, Weight::Light)))
    });
    c.bench_function("fusion/wordcount_unfused", |b| {
        b.iter(|| black_box(embedded::sequential_unfused(&corpus, Weight::Light)))
    });
}

criterion_group!(benches, chain_fused, chain_unfused, wordcount_pair);
criterion_main!(benches);
