//! Microbench for the environment hot path behind the slot-resolution
//! work: what does one variable access cost under each addressing mode,
//! and what does interning buy a string-keyed table?
//!
//! Three groups:
//!
//! * `env_hot/slot_*` — the resolved fast path: `Env::slot(depth, idx)`
//!   (two pointer hops, no hashing, no frame lock), at depth 0 and
//!   through a parent hop, get and set;
//! * `env_hot/name_*` — the same accesses through the by-name fallback
//!   (`Env::lookup`): hash + frame walk + overlay lock, what every
//!   access cost before the resolve pass existed;
//! * `env_hot/table_key_*` — `Value::Str` table insertion with interned
//!   keys (equality = pointer compare after the first pass) vs fresh
//!   allocations per key (full string compare + per-key allocation).
//!
//! Wired into `scripts/ci.sh` bench-smoke so the slot/name gap is
//! re-measured (cheaply) on every CI run.

use criterion::{criterion_group, criterion_main, Criterion};
use gde::{Env, FrameLayout, Symbol, Value};
use std::hint::black_box;

/// Build the benchmark frame: a parent with one layout slot (`g`) and a
/// child frame with three (`a`, `b`, `acc`) — the shape of a resolved
/// procedure activation under a global frame.
fn frames() -> (Env, Env) {
    let root = Env::root();
    let parent = root.child_with_layout(FrameLayout::of(["g"].map(Symbol::new)));
    parent.slot_local(0).set(Value::from(7i64));
    let child = parent.child_with_layout(FrameLayout::of(["a", "b", "acc"].map(Symbol::new)));
    child.slot_local(0).set(Value::from(1i64));
    child.slot_local(1).set(Value::from(2i64));
    child.slot_local(2).set(Value::from(0i64));
    (parent, child)
}

fn bench_env(c: &mut Criterion) {
    let (_parent, child) = frames();

    let mut group = c.benchmark_group("env_hot");

    // -- resolved: slot addressing --------------------------------------
    group.bench_function("slot_get_local", |b| {
        b.iter(|| black_box(child.slot(0, 2).get()))
    });
    group.bench_function("slot_get_parent", |b| {
        b.iter(|| black_box(child.slot(1, 0).get()))
    });
    group.bench_function("slot_set_local", |b| {
        let cell = child.slot(0, 2);
        let mut i = 0i64;
        b.iter(|| {
            i = i.wrapping_add(1);
            cell.set(Value::from(i));
        })
    });

    // -- unresolved: by-name fallback -----------------------------------
    group.bench_function("name_get_local", |b| {
        b.iter(|| black_box(child.lookup("acc").expect("bound").get()))
    });
    group.bench_function("name_get_parent", |b| {
        b.iter(|| black_box(child.lookup("g").expect("bound").get()))
    });
    group.bench_function("name_set_local", |b| {
        let mut i = 0i64;
        b.iter(|| {
            i = i.wrapping_add(1);
            child.set("acc", Value::from(i));
        })
    });

    group.finish();
}

/// The wordcount table-key shape: insert/overwrite `n` distinct words
/// into a dynamic table, repeatedly — with interned vs fresh keys.
fn bench_table_keys(c: &mut Criterion) {
    let words: Vec<String> = (0..256).map(|i| format!("w{i:03x}word")).collect();

    let mut group = c.benchmark_group("env_hot");

    group.bench_function("table_key_interned", |b| {
        // Interned: after the first pass every key is the canonical
        // Arc<str>; hashing reuses the shared bytes and no per-pass
        // allocation happens.
        let keys: Vec<Value> = words.iter().map(|w| Value::interned(w)).collect();
        b.iter(|| {
            let t = Value::table();
            for k in &keys {
                let n = gde::ops::index(&t, k).and_then(|v| v.as_int()).unwrap_or(0) + 1;
                gde::ops::index_assign(&t, k, Value::from(n));
            }
            black_box(t.size())
        })
    });

    group.bench_function("table_key_fresh", |b| {
        // Fresh: a new Arc<str> per key per pass — the pre-interner
        // behavior; every pass re-allocates the entire vocabulary before
        // the table ever sees it.
        b.iter(|| {
            let t = Value::table();
            for w in &words {
                let k = Value::str(w);
                let n = gde::ops::index(&t, &k)
                    .and_then(|v| v.as_int())
                    .unwrap_or(0)
                    + 1;
                gde::ops::index_assign(&t, &k, Value::from(n));
            }
            black_box(t.size())
        })
    });

    group.finish();
}

criterion_group!(benches, bench_env, bench_table_keys);
criterion_main!(benches);
