//! Ablation D: map-reduce scaling with worker-thread count (the paper ran
//! on a 64-core Opteron; this sweep shows where this machine saturates).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use wordcount::{native, Corpus, Weight};

fn thread_scaling(c: &mut Criterion) {
    // Heavyweight nodes so the parallel fraction dominates coordination.
    let corpus = Corpus::generate(40, 10, 9);
    let max = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut counts = vec![1usize, 2, 4, 8];
    counts.retain(|&n| n <= max.max(1));
    if !counts.contains(&max) {
        counts.push(max);
    }
    let mut group = c.benchmark_group("ablation/threads");
    group.sample_size(10);
    for threads in counts {
        let pool = exec::ThreadPool::new(threads);
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, _| {
            b.iter(|| {
                black_box(native::map_reduce_on(
                    corpus.lines(),
                    Weight::Heavy,
                    10, // fine-grained chunks so every worker gets fed
                    &pool,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, thread_scaling);
criterion_main!(benches);
