//! Ablation C (Fig. 4): map-reduce time as a function of chunk size — the
//! `DataParallel(int size)` constructor parameter. Too-small chunks pay
//! task overhead per chunk; too-large chunks starve the pool.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use wordcount::{embedded, native, Corpus, Weight};

fn chunk_size_sweep(c: &mut Criterion) {
    let corpus = Corpus::generate(400, 10, 8);
    let pool = Arc::new(exec::ThreadPool::new(
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4),
    ));
    let mut group = c.benchmark_group("ablation/chunk_size");
    group.sample_size(10);
    for chunk in [10usize, 100, 1_000, 10_000] {
        group.bench_with_input(
            BenchmarkId::new("native_map_reduce", chunk),
            &chunk,
            |b, &chunk| {
                b.iter(|| {
                    black_box(native::map_reduce_on(
                        corpus.lines(),
                        Weight::Light,
                        chunk,
                        &pool,
                    ))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("embedded_map_reduce", chunk),
            &chunk,
            |b, &chunk| {
                b.iter(|| black_box(embedded::map_reduce_sized(&corpus, Weight::Light, chunk)))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, chunk_size_sweep);
criterion_main!(benches);
