//! Ablation B (Sec. V.B): "the kernel is optimized to statefully resume its
//! point of suspension on a succeeding next(), incurring zero cost for
//! suspends." This bench measures the suspension machinery directly:
//!
//! * a plain Rust iterator sum (the floor);
//! * a `gde` range generator driven to failure;
//! * the same generator buried under increasing depths of pass-through
//!   combinators (limit wrappers), to expose the per-level resume cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gde::comb::{limit, to_range};
use gde::{BoxGen, Gen, GenExt, Step};
use std::hint::black_box;

const N: i64 = 100_000;

fn plain_iterator_floor(c: &mut Criterion) {
    c.bench_function("ablation/suspend/rust_iterator", |b| {
        b.iter(|| {
            let mut sum = 0i64;
            for i in 1..=N {
                sum += black_box(i);
            }
            black_box(sum)
        })
    });
}

fn gde_range(c: &mut Criterion) {
    c.bench_function("ablation/suspend/gde_range", |b| {
        b.iter(|| {
            let mut g = to_range(1, N, 1);
            let mut sum = 0i64;
            while let Step::Suspend(v) = g.resume() {
                sum += v.as_int().expect("range yields ints");
            }
            black_box(sum)
        })
    });
}

fn wrapped_depths(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/suspend/wrapper_depth");
    for depth in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &depth| {
            b.iter(|| {
                // Each limit is a pass-through: the suspension must climb
                // `depth` levels per result.
                let mut g: BoxGen = Box::new(to_range(1, N, 1));
                for _ in 0..depth {
                    g = Box::new(limit(g, usize::MAX));
                }
                black_box(g.count())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, plain_iterator_floor, gde_range, wrapped_depths);
criterion_main!(benches);
