//! Microbench for the allocation-free string plane (DESIGN.md § "String
//! builder arena"): what do the three string operators cost per call,
//! builder-backed versus the old allocate-per-result implementations?
//!
//! Three groups:
//!
//! * `str_ops/concat_*` — a `word || "=" || count` report chain per word:
//!   `builder` is `ops::concat` (arena append + tail extension), `owned`
//!   is `ops::concat_owned` (fresh `String` + `Arc<str>` per `||`), and
//!   `widen` concatenates two adjacent subscript windows (the zero-copy
//!   adjacency fast path);
//! * `str_ops/coerce_*` — numeric-vs-string comparisons: `str_lt` coerces
//!   its integer operand through the small-int image cache / stack
//!   formatter instead of allocating an `Arc<str>` per compare;
//! * `str_ops/index_*` — subscripting: ASCII words take the O(1) byte
//!   path, multi-byte words a single `char_indices` scan with an early
//!   exit, negative indices replay the cached char count.
//!
//! Wired into `scripts/ci.sh` bench-smoke so the string-plane gap is
//! re-measured (cheaply) on every CI run.

use criterion::{criterion_group, criterion_main, Criterion};
use gde::Value;
use std::hint::black_box;
use std::sync::Arc;

/// The benchmark vocabulary: 256 short words as slice windows into one
/// shared line (the form `WordSplit` hands to `||`).
fn vocabulary() -> Vec<Value> {
    let words: Vec<String> = (0..256).map(|i| format!("w{i:03x}word")).collect();
    let line: Arc<str> = Arc::from(words.join(" ").as_str());
    let mut out = Vec::with_capacity(words.len());
    let mut pos = 0usize;
    for w in &words {
        out.push(Value::slice(line.clone(), pos, pos + w.len()));
        pos += w.len() + 1;
    }
    out
}

fn bench_concat(c: &mut Criterion) {
    let words = vocabulary();
    let eq = Value::interned("=");
    let mut group = c.benchmark_group("str_ops");

    group.bench_function("concat_builder", |b| {
        // word || "=" || count through the arena: one copy into the
        // chunk, then a tail extension per extra hop.
        b.iter(|| {
            for (i, w) in words.iter().enumerate() {
                let n = Value::from((i % 256) as i64);
                let line = gde::ops::concat(w, &eq).and_then(|l| gde::ops::concat(&l, &n));
                black_box(line);
            }
        })
    });
    group.bench_function("concat_owned", |b| {
        // The pre-arena implementation: String + Arc<str> per ||.
        b.iter(|| {
            for (i, w) in words.iter().enumerate() {
                let n = Value::from((i % 256) as i64);
                let line =
                    gde::ops::concat_owned(w, &eq).and_then(|l| gde::ops::concat_owned(&l, &n));
                black_box(line);
            }
        })
    });
    group.bench_function("concat_widen", |b| {
        // Two adjacent subscript windows of the same owner: the result is
        // a wider window, zero bytes copied.
        let pairs: Vec<(Value, Value)> = words
            .iter()
            .map(|w| {
                (
                    gde::ops::index(w, &Value::from(1)).unwrap(),
                    gde::ops::index(w, &Value::from(2)).unwrap(),
                )
            })
            .collect();
        b.iter(|| {
            for (a, b2) in &pairs {
                black_box(gde::ops::concat(a, b2));
            }
        })
    });
    group.finish();
}

fn bench_coerce(c: &mut Criterion) {
    let words = vocabulary();
    let mut group = c.benchmark_group("str_ops");

    group.bench_function("coerce_int_cmp", |b| {
        // Lexical compare against an integer: the right operand's image
        // comes from the small-int cache / stack buffer, not a fresh Arc.
        b.iter(|| {
            for (i, w) in words.iter().enumerate() {
                black_box(gde::ops::str_lt(w, &Value::from((i % 256) as i64)));
            }
        })
    });
    group.bench_function("coerce_str_cmp", |b| {
        // Baseline: both operands already strings.
        let threshold = Value::str("w100word");
        b.iter(|| {
            for w in &words {
                black_box(gde::ops::str_lt(w, &threshold));
            }
        })
    });
    group.finish();
}

fn bench_index(c: &mut Criterion) {
    let words = vocabulary();
    let multibyte: Vec<Value> = (0..256)
        .map(|i| Value::str(format!("é{i:03}börd")))
        .collect();
    let mut group = c.benchmark_group("str_ops");

    group.bench_function("index_ascii", |b| {
        // O(1) byte subscript on ASCII words.
        let i3 = Value::from(3);
        b.iter(|| {
            for w in &words {
                black_box(gde::ops::index(w, &i3));
            }
        })
    });
    group.bench_function("index_multibyte", |b| {
        // Single char_indices scan with early exit — no Vec<char>.
        let i3 = Value::from(3);
        b.iter(|| {
            for w in &multibyte {
                black_box(gde::ops::index(w, &i3));
            }
        })
    });
    group.bench_function("index_negative", |b| {
        // Negative subscripts need the char count; slices replay it from
        // the cache after the first call.
        let last = Value::from(0);
        b.iter(|| {
            for w in &words {
                black_box(gde::ops::index(w, &last));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_concat, bench_coerce, bench_index);
criterion_main!(benches);
