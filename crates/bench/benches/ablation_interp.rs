//! Ablation E: the cost of full interpretation vs. the transpiled
//! combinator path vs. native Rust, on the sequential word-count.
//!
//! The paper's Junicon runs either interactively (Groovy script engine) or
//! translated to Java; Fig. 6 measures the translated path. This bench
//! brackets both: `interp` parses/normalizes/compiles once and then drives
//! the interpreted generator per iteration; `embedded` drives the very
//! combinator trees transpiled code builds; `native` is the plain-Rust
//! floor.

use criterion::{criterion_group, criterion_main, Criterion};
use gde::{GenExt, Value};
use junicon::Interp;
use std::hint::black_box;
use wordcount::{embedded, native, Corpus, Weight};

const LINES: usize = 200;

fn make_interp(corpus: &Corpus) -> Interp {
    let i = Interp::new();
    i.globals().declare("lines", corpus.as_value());
    i.register_native("wordToNumber", |_t, args| {
        let w = args.first()?.as_str()?;
        bigint::BigUint::from_str_radix(w, 36)
            .ok()
            .map(|n| Value::big(n.into()))
    });
    i.register_native("hashNumber", |_t, args| {
        let mag = match args.first()?.deref() {
            Value::Int(v) if v >= 0 => v as f64,
            Value::Big(b) => b.to_f64(),
            _ => return None,
        };
        Some(Value::Real(mag.sqrt()))
    });
    i.load(
        r#"
        def hashAll() {
            local line;
            every line := !lines do {
                suspend this::hashNumber(this::wordToNumber( ! line::split("\\s+") ));
            };
        }
        "#,
    )
    .expect("wordcount source");
    i
}

fn interp_total(i: &Interp) -> f64 {
    let mut g = i.gen("hashAll()").expect("compiles");
    let mut total = 0.0;
    while let Some(v) = g.next_value() {
        total += v.as_real().unwrap_or(0.0);
    }
    total
}

fn interpretation_overhead(c: &mut Criterion) {
    let corpus = Corpus::generate(LINES, 10, 5);
    let interp = make_interp(&corpus);

    // Sanity: all three paths agree before we time them.
    let reference = native::sequential(corpus.lines(), Weight::Light);
    assert!((interp_total(&interp) - reference).abs() < reference * 1e-9);
    assert!((embedded::sequential(&corpus, Weight::Light) - reference).abs() < reference * 1e-9);

    let mut group = c.benchmark_group("ablation/interpretation");
    group.sample_size(10);
    group.bench_function("native", |b| {
        b.iter(|| black_box(native::sequential(corpus.lines(), Weight::Light)))
    });
    group.bench_function("embedded_combinators", |b| {
        b.iter(|| black_box(embedded::sequential(&corpus, Weight::Light)))
    });
    group.bench_function("interpreted_junicon", |b| {
        b.iter(|| black_box(interp_total(&interp)))
    });
    // Parse+normalize+compile cost alone (per-evaluation setup).
    group.bench_function("compile_only", |b| {
        b.iter(|| black_box(interp.gen("hashAll()").expect("compiles")))
    });
    group.finish();
}

criterion_group!(benches, interpretation_overhead);
criterion_main!(benches);
