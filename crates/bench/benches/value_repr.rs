//! Microbench for the compact value representation (DESIGN.md § "Compact
//! values"): what does a word cost to *create*, to *clone through a
//! stage*, and to *use as a table key*, per representation?
//!
//! Three groups:
//!
//! * `value_repr/make_*` — producing one word as an owned `Str` (fresh
//!   `Arc<str>` per word), an interned `Sym` (one-time intern, then a
//!   copyable handle), and an arena `Slice` (a window into a shared line
//!   buffer — the `WordSplit` hot path);
//! * `value_repr/clone_*` — moving a value through a fused stage:
//!   `Sym`/`Int` clones are inline copies, `Str` clones bump an `Arc`,
//!   `Slice` clones bump the shared line's `Arc` (one per line, not one
//!   per word);
//! * `value_repr/key_*` — table probes through `Key::Sym` (cached hash,
//!   pointer-first equality) vs `Key::Str` (rehash + byte compare per
//!   probe).
//!
//! Wired into `scripts/ci.sh` bench-smoke so the representation gap is
//! re-measured (cheaply) on every CI run.

use criterion::{criterion_group, criterion_main, Criterion};
use gde::{Symbol, Value};
use std::hint::black_box;
use std::sync::Arc;

/// The benchmark vocabulary: 256 distinct short words, plus the single
/// line buffer holding all of them (the arena a `WordSplit` would own).
fn vocabulary() -> (Vec<String>, Arc<str>, Vec<(u32, u32)>) {
    let words: Vec<String> = (0..256).map(|i| format!("w{i:03x}word")).collect();
    let line: Arc<str> = Arc::from(words.join(" ").as_str());
    let mut windows = Vec::with_capacity(words.len());
    let mut pos = 0u32;
    for w in &words {
        windows.push((pos, pos + w.len() as u32));
        pos += w.len() as u32 + 1;
    }
    (words, line, windows)
}

fn bench_make(c: &mut Criterion) {
    let (words, line, windows) = vocabulary();
    let mut group = c.benchmark_group("value_repr");

    group.bench_function("make_str", |b| {
        // One heap allocation per word per pass.
        b.iter(|| {
            for w in &words {
                black_box(Value::str(w));
            }
        })
    });
    group.bench_function("make_sym", |b| {
        // Interner hit per word (the vocabulary is already interned after
        // the first pass): hash + bucket walk, no allocation.
        b.iter(|| {
            for w in &words {
                black_box(Value::interned(w));
            }
        })
    });
    group.bench_function("make_slice", |b| {
        // The WordSplit path: an Arc bump on the shared line + bounds
        // check, no hashing, no allocation.
        b.iter(|| {
            for &(start, end) in &windows {
                black_box(Value::slice(line.clone(), start as usize, end as usize));
            }
        })
    });

    group.finish();
}

fn bench_clone(c: &mut Criterion) {
    let (words, line, windows) = vocabulary();
    let strs: Vec<Value> = words.iter().map(Value::str).collect();
    let syms: Vec<Value> = words.iter().map(|w| Value::interned(w)).collect();
    let slices: Vec<Value> = windows
        .iter()
        .map(|&(s, e)| Value::slice(line.clone(), s as usize, e as usize))
        .collect();
    let ints: Vec<Value> = (0..256i64).map(Value::from).collect();

    let mut group = c.benchmark_group("value_repr");
    for (name, vals) in [
        ("clone_int", &ints),
        ("clone_sym", &syms),
        ("clone_str", &strs),
        ("clone_slice", &slices),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                for v in vals {
                    black_box(v.clone());
                }
            })
        });
    }
    group.finish();
}

fn bench_keys(c: &mut Criterion) {
    let (words, _, _) = vocabulary();
    let mut group = c.benchmark_group("value_repr");

    // A populated table, probed 256 times per pass through each key form.
    let table = Value::table();
    for (i, w) in words.iter().enumerate() {
        gde::ops::index_assign(&table, &Value::interned(w), Value::from(i as i64));
    }
    let sym_probes: Vec<Value> = words.iter().map(|w| Value::interned(w)).collect();
    let str_probes: Vec<Value> = words.iter().map(Value::str).collect();

    group.bench_function("key_sym_probe", |b| {
        // Cached hash + pointer-first equality.
        b.iter(|| {
            for k in &sym_probes {
                black_box(gde::ops::index(&table, k));
            }
        })
    });
    group.bench_function("key_str_probe", |b| {
        // FNV over the bytes per probe + byte-compare on hit.
        b.iter(|| {
            for k in &str_probes {
                black_box(gde::ops::index(&table, k));
            }
        })
    });
    group.bench_function("key_sym_hash", |b| {
        // The raw hash-code path the Key impl uses.
        let syms: Vec<Symbol> = words.iter().map(|w| Symbol::new(w)).collect();
        b.iter(|| {
            for s in &syms {
                black_box(s.hash_code());
            }
        })
    });

    group.finish();
}

criterion_group!(benches, bench_make, bench_clone, bench_keys);
criterion_main!(benches);
