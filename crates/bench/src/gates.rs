//! The CI regression gates as a tested library.
//!
//! Every perf PR used to grow `scripts/ci.sh` by another inline grep/awk
//! block — untested shell that silently skipped when the JSON schema
//! shifted (a renamed key yielded an empty grep, and an empty grep looked
//! exactly like "obs is off"). These functions read a parsed
//! `BENCH_ci.json` structurally instead: a malformed or renamed key is a
//! loud [`GateStatus::Fail`], and a skip happens only for the one
//! legitimate reason (the snapshot was produced without the `obs`
//! feature, so there are no counters to read).
//!
//! The gates, in order:
//!
//! 1. **schema** — the document is a `figure6-v2` object with a config, a
//!    non-empty measurement table of well-formed rows, and an obs member;
//! 2. **contention** — `blockingq.queue.blocked_takes / takes` stays
//!    under the pre-batching baseline ratio (DESIGN.md § Batched
//!    transport);
//! 3. **fusion** — `gde.comb.fused_stages > 0`: the benchmarked pipelines
//!    still reach the stage-fusion rewriter (DESIGN.md § Stage fusion);
//! 4. **compact-values** — `gde.value.inline_hits > 0`: the compact
//!    value representation is still on the hot path (DESIGN.md § Compact
//!    values);
//! 5. **concat-slices** — `gde.value.concat_slices > 0`: concatenation
//!    still reaches the builder arena's zero-copy regimes (DESIGN.md §
//!    String builder arena);
//! 6. **embedded/native ratio** — the Sequential-Lightweight
//!    Junicon/Native median ratio stays under baseline + 15% headroom.

use crate::json::Json;

/// Threshold knobs, passed by `scripts/ci.sh` (they are *derived from the
/// committed baseline*, so they live in the script next to the derivation
/// note, not here).
#[derive(Debug, Clone, Copy)]
pub struct Thresholds {
    pub max_blocked_take_ratio: f64,
    pub max_seq_lw_ratio: f64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateStatus {
    Pass,
    Fail,
    /// Legitimately not checkable (obs snapshot absent). `--strict` mode
    /// turns this into a failure at the exit-code level.
    Skip,
}

#[derive(Debug)]
pub struct GateReport {
    pub name: &'static str,
    pub status: GateStatus,
    pub detail: String,
}

impl GateReport {
    fn pass(name: &'static str, detail: String) -> Self {
        GateReport {
            name,
            status: GateStatus::Pass,
            detail,
        }
    }
    fn fail(name: &'static str, detail: String) -> Self {
        GateReport {
            name,
            status: GateStatus::Fail,
            detail,
        }
    }
    fn skip(name: &'static str, detail: String) -> Self {
        GateReport {
            name,
            status: GateStatus::Skip,
            detail,
        }
    }
}

/// Read a counter out of the obs snapshot. `Ok(None)` means the snapshot
/// itself is absent (`"obs": null` — bench built without the feature);
/// a *present* snapshot with a missing or non-counter metric is an error,
/// because that is exactly what a silent schema rename looks like.
fn counter(doc: &Json, metric: &str) -> Result<Option<u64>, String> {
    let obs = doc
        .get("obs")
        .ok_or_else(|| "snapshot has no \"obs\" member".to_string())?;
    if obs.is_null() {
        return Ok(None);
    }
    let entry = obs
        .get(metric)
        .ok_or_else(|| format!("obs snapshot has no \"{metric}\" (renamed or unregistered?)"))?;
    if entry.get("kind").and_then(Json::as_str) != Some("counter") {
        return Err(format!("\"{metric}\" is not a counter"));
    }
    entry
        .get("value")
        .and_then(Json::as_u64)
        .map(Some)
        .ok_or_else(|| format!("\"{metric}\" has no integer value"))
}

/// Find a cell median in the measurement table.
fn median_ns(doc: &Json, suite: &str, variant: &str, weight: &str) -> Option<u64> {
    doc.get("measurements")?
        .as_arr()?
        .iter()
        .find(|row| {
            row.get("suite").and_then(Json::as_str) == Some(suite)
                && row.get("variant").and_then(Json::as_str) == Some(variant)
                && row.get("weight").and_then(Json::as_str) == Some(weight)
        })?
        .get("median_ns")?
        .as_u64()
}

/// Run every gate against a parsed snapshot.
pub fn run_gates(doc: &Json, th: &Thresholds) -> Vec<GateReport> {
    let mut out = Vec::new();

    // 1. Schema: fail loudly on anything structurally off, because every
    // later gate reads through this shape.
    let schema_problem = check_schema(doc);
    match schema_problem {
        None => out.push(GateReport::pass(
            "schema",
            "figure6-v2 with config, well-formed measurements, obs member".into(),
        )),
        Some(problem) => {
            out.push(GateReport::fail("schema", problem));
            // The document is not trustworthy; report the rest as failed
            // rather than guessing through a broken shape.
            for name in [
                "contention",
                "fusion",
                "compact-values",
                "concat-slices",
                "seq-lw-ratio",
            ] {
                out.push(GateReport::fail(
                    name,
                    "not evaluated: schema gate failed".into(),
                ));
            }
            return out;
        }
    }

    // 2. Contention ratio (scale-free, so the smoke corpus works).
    out.push(
        match (
            counter(doc, "blockingq.queue.blocked_takes"),
            counter(doc, "blockingq.queue.takes"),
        ) {
            (Ok(None), _) | (_, Ok(None)) => GateReport::skip(
                "contention",
                "no obs snapshot (bench built without the obs feature)".into(),
            ),
            (Err(e), _) | (_, Err(e)) => GateReport::fail("contention", e),
            (Ok(Some(_)), Ok(Some(0))) => GateReport::fail(
                "contention",
                "takes = 0: the benchmarked pipelines recorded no queue traffic".into(),
            ),
            (Ok(Some(blocked)), Ok(Some(takes))) => {
                let ratio = blocked as f64 / takes as f64;
                let detail = format!(
                    "blocked_takes/takes = {blocked}/{takes} = {ratio:.4} (cap {})",
                    th.max_blocked_take_ratio
                );
                if ratio <= th.max_blocked_take_ratio {
                    GateReport::pass("contention", detail)
                } else {
                    GateReport::fail(
                        "contention",
                        format!(
                            "{detail} — per-item transport crept back onto the hot path \
                             (DESIGN.md § Batched transport)"
                        ),
                    )
                }
            }
        },
    );

    // 3. Fusion wiring.
    out.push(wiring_gate(
        doc,
        "fusion",
        "gde.comb.fused_stages",
        "the benchmarked pipelines no longer reach the stage-fusion rewriter \
         (DESIGN.md § Stage fusion)",
    ));

    // 4. Compact-value wiring.
    out.push(wiring_gate(
        doc,
        "compact-values",
        "gde.value.inline_hits",
        "no value took the inline (Sym/Slice/scalar) path — the compact \
         representation is off the hot path (DESIGN.md § Compact values)",
    ));

    // 5. Builder-arena wiring: the figure6 run's untimed report pass
    // must reach the zero-copy concat regimes.
    out.push(wiring_gate(
        doc,
        "concat-slices",
        "gde.value.concat_slices",
        "no concatenation widened or tail-extended an arena window — the \
         string builder is off the hot path (DESIGN.md § String builder arena)",
    ));

    // 6. Embedded/native Sequential-Lightweight ratio. Missing cells are
    // a failure: the old grep skipped, which is how a renamed variant
    // could turn the gate off forever.
    out.push(
        match (
            median_ns(doc, "Junicon", "Sequential", "Lightweight"),
            median_ns(doc, "Native", "Sequential", "Lightweight"),
        ) {
            (Some(j), Some(n)) if n > 0 => {
                let ratio = j as f64 / n as f64;
                let detail = format!(
                    "Junicon/Native Sequential-LW = {j}/{n} = {ratio:.3} (cap {})",
                    th.max_seq_lw_ratio
                );
                if ratio <= th.max_seq_lw_ratio {
                    GateReport::pass("seq-lw-ratio", detail)
                } else {
                    GateReport::fail(
                        "seq-lw-ratio",
                        format!(
                            "{detail} — per-word allocations, by-name lookups, or an \
                             unfused hot path are back on the embedded side \
                             (DESIGN.md § Compact values)"
                        ),
                    )
                }
            }
            (j, n) => GateReport::fail(
                "seq-lw-ratio",
                format!(
                    "Sequential-Lightweight medians missing or zero \
                     (Junicon: {j:?}, Native: {n:?}) — renamed cell?"
                ),
            ),
        },
    );

    out
}

/// Evaluate the schedule-exploration smoke gate on the JSON-lines summary
/// the schedtest model suites append under `SCHEDTEST_JSON` (one
/// `schedtest-v1` object per `explore()` call — see
/// `crates/schedtest/src/lib.rs`). The gate holds when the smoke actually
/// ran: at least one summary line, every line well-formed, no exploration
/// failed, and `explored_schedules` sums to more than zero. A summary
/// that parses but explored nothing is exactly what a mis-wired cfg flag
/// looks like (the model tests compiled out), so it FAILs rather than
/// skips; the only skip is the caller not passing a summary at all.
pub fn schedtest_gate(text: &str) -> GateReport {
    let name = "schedtest";
    let mut explorations = 0u64;
    let mut schedules = 0u64;
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let lineno = i + 1;
        let doc = match Json::parse(line) {
            Ok(doc) => doc,
            Err(e) => {
                return GateReport::fail(name, format!("summary line {lineno}: bad JSON: {e}"))
            }
        };
        match doc.get("schema").and_then(Json::as_str) {
            Some("schedtest-v1") => {}
            other => {
                return GateReport::fail(
                    name,
                    format!("summary line {lineno}: schema {other:?}, expected \"schedtest-v1\""),
                )
            }
        }
        let Some(explored) = doc.get("explored_schedules").and_then(Json::as_u64) else {
            return GateReport::fail(
                name,
                format!("summary line {lineno}: no integer \"explored_schedules\""),
            );
        };
        if let Some(Json::Bool(true)) = doc.get("failed") {
            let test = doc
                .get("test")
                .and_then(Json::as_str)
                .unwrap_or("<unnamed>");
            return GateReport::fail(
                name,
                format!("exploration \"{test}\" found a failing schedule (line {lineno})"),
            );
        }
        explorations += 1;
        schedules += explored;
    }
    if explorations == 0 {
        return GateReport::fail(
            name,
            "summary has no schedtest-v1 lines — the smoke ran zero explorations".into(),
        );
    }
    if schedules == 0 {
        return GateReport::fail(
            name,
            format!(
                "{explorations} explorations but explored_schedules sums to 0 — \
                 the model tests compiled out (cfg flag mis-wired?)"
            ),
        );
    }
    GateReport::pass(
        name,
        format!("{explorations} explorations, {schedules} schedules explored"),
    )
}

/// Evaluate the fault-plane wiring gate on the `fault-smoke-v1` snapshot
/// the `fault_smoke` binary writes (`FAULTS_ci.json`). The smoke run arms
/// deterministic fault scenarios against every policy surface, so a
/// healthy snapshot shows *every* fault counter non-zero: a zero (or a
/// missing key — what a silent rename looks like) means that surface no
/// longer reaches the fault plane and FAILs loudly. The only skip is the
/// caller not passing a snapshot at all (`--faults-json` absent), which
/// strict CI turns into a failure.
pub fn faults_gate(doc: &Json) -> GateReport {
    let name = "faults";
    match doc.get("schema").and_then(Json::as_str) {
        Some("fault-smoke-v1") => {}
        other => {
            return GateReport::fail(
                name,
                format!("schema {other:?}, expected \"fault-smoke-v1\""),
            )
        }
    }
    match doc.get("injected").and_then(Json::as_u64) {
        Some(0) => {
            return GateReport::fail(
                name,
                "injected = 0 — the smoke armed no faults (FAULTS mis-parsed \
                 or the faultinj feature compiled out)"
                    .into(),
            )
        }
        Some(_) => {}
        None => return GateReport::fail(name, "no integer \"injected\" total".into()),
    }
    // Every surface of the fault plane, by its committed counter key.
    // All must be present AND non-zero after the smoke scenarios.
    let mut details = Vec::new();
    for metric in [
        "faults.injected",
        "pipes.faults.propagated",
        "pipes.faults.retries",
        "pipes.faults.degraded_sources",
        "blockingq.close.failed",
    ] {
        match counter(doc, metric) {
            Ok(None) => {
                return GateReport::fail(
                    name,
                    "no obs snapshot (fault_smoke built without the obs feature)".into(),
                )
            }
            Err(e) => return GateReport::fail(name, e),
            Ok(Some(0)) => {
                return GateReport::fail(
                    name,
                    format!(
                        "{metric} = 0 — this fault surface no longer fires under \
                         the smoke scenarios (DESIGN.md § Fault propagation and \
                         injection)"
                    ),
                )
            }
            Ok(Some(v)) => details.push(format!("{metric} = {v}")),
        }
    }
    GateReport::pass(name, details.join(", "))
}

/// A counter-must-be-nonzero wiring gate (fusion, compact values).
fn wiring_gate(
    doc: &Json,
    name: &'static str,
    metric: &'static str,
    why_it_matters: &str,
) -> GateReport {
    match counter(doc, metric) {
        Ok(None) => GateReport::skip(
            name,
            "no obs snapshot (bench built without the obs feature)".into(),
        ),
        Err(e) => GateReport::fail(name, e),
        Ok(Some(0)) => GateReport::fail(name, format!("{metric} = 0 — {why_it_matters}")),
        Ok(Some(v)) => GateReport::pass(name, format!("{metric} = {v} > 0")),
    }
}

fn check_schema(doc: &Json) -> Option<String> {
    match doc.get("schema").and_then(Json::as_str) {
        Some("figure6-v2") => {}
        Some(other) => return Some(format!("schema is \"{other}\", expected \"figure6-v2\"")),
        None => return Some("no \"schema\" member".into()),
    }
    if !matches!(doc.get("config"), Some(Json::Obj(_))) {
        return Some("no \"config\" object".into());
    }
    let Some(rows) = doc.get("measurements").and_then(Json::as_arr) else {
        return Some("no \"measurements\" array".into());
    };
    if rows.is_empty() {
        return Some("\"measurements\" is empty".into());
    }
    for (i, row) in rows.iter().enumerate() {
        for key in ["suite", "variant", "weight"] {
            if row.get(key).and_then(Json::as_str).is_none() {
                return Some(format!("measurement {i} has no string \"{key}\""));
            }
        }
        if row.get("median_ns").and_then(Json::as_u64).is_none() {
            return Some(format!("measurement {i} has no integer \"median_ns\""));
        }
    }
    match doc.get("obs") {
        Some(Json::Obj(_)) | Some(Json::Null) => None,
        Some(_) => Some("\"obs\" is neither an object nor null".into()),
        None => Some("no \"obs\" member".into()),
    }
}

/// Find a cell's normalized time in the measurement table.
fn normalized(doc: &Json, suite: &str, variant: &str, weight: &str) -> Option<f64> {
    doc.get("measurements")?
        .as_arr()?
        .iter()
        .find(|row| {
            row.get("suite").and_then(Json::as_str) == Some(suite)
                && row.get("variant").and_then(Json::as_str) == Some(variant)
                && row.get("weight").and_then(Json::as_str) == Some(weight)
        })?
        .get("normalized")?
        .as_f64()
}

/// Render the baseline-drift table: per-cell deltas of the current run
/// against the committed baseline. Report-only — perf on a smoke corpus
/// is noise, but the *direction* across many cells is signal worth having
/// in every CI log. The raw median delta mostly reflects corpus scale
/// when the two runs used different sizes; the `norm` delta (each cell
/// normalized to its weight set's native-MapReduce bar) is scale-free and
/// is the column to read.
pub fn drift_table(current: &Json, baseline: &Json) -> Result<String, String> {
    let rows = current
        .get("measurements")
        .and_then(Json::as_arr)
        .ok_or("current snapshot has no measurements")?;
    let mut out = String::new();
    out.push_str(&format!(
        "{:<12} {:<9} {:<13} {:>12} {:>12} {:>8} {:>8}\n",
        "weight", "suite", "variant", "current_ns", "baseline_ns", "delta", "norm"
    ));
    for row in rows {
        let (Some(suite), Some(variant), Some(weight), Some(cur)) = (
            row.get("suite").and_then(Json::as_str),
            row.get("variant").and_then(Json::as_str),
            row.get("weight").and_then(Json::as_str),
            row.get("median_ns").and_then(Json::as_u64),
        ) else {
            return Err("malformed measurement row in current snapshot".into());
        };
        let norm_delta = match (
            row.get("normalized").and_then(Json::as_f64),
            normalized(baseline, suite, variant, weight),
        ) {
            (Some(c), Some(b)) if b > 0.0 => format!("{:>+7.1}%", (c / b - 1.0) * 100.0),
            _ => format!("{:>8}", "-"),
        };
        let line = match median_ns(baseline, suite, variant, weight) {
            Some(base) if base > 0 => {
                let delta = (cur as f64 / base as f64 - 1.0) * 100.0;
                format!(
                    "{weight:<12} {suite:<9} {variant:<13} {cur:>12} {base:>12} {delta:>+7.1}% {norm_delta}\n"
                )
            }
            _ => format!(
                "{weight:<12} {suite:<9} {variant:<13} {cur:>12} {:>12} {:>8} {norm_delta}\n",
                "-", "new"
            ),
        };
        out.push_str(&line);
    }
    Ok(out)
}
