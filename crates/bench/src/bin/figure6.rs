//! Regenerate Figure 6: normalized execution time of the word-count suite.
//!
//! ```text
//! cargo run -p bench --release --bin figure6 [-- --lines N --heavy-lines N --iters N --json PATH]
//! ```

use bench::{render_table, run_figure6, shape_findings, Figure6Config};

fn main() {
    let mut cfg = Figure6Config::default();
    let mut json_path: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| {
                eprintln!("missing value for {}", args[*i - 1]);
                std::process::exit(2);
            })
        };
        match args[i].as_str() {
            "--lines" => cfg.light_lines = take(&mut i).parse().expect("--lines N"),
            "--heavy-lines" => cfg.heavy_lines = take(&mut i).parse().expect("--heavy-lines N"),
            "--words" => cfg.words_per_line = take(&mut i).parse().expect("--words N"),
            "--iters" => cfg.iterations = take(&mut i).parse().expect("--iters N"),
            "--warmup" => cfg.warmup = take(&mut i).parse().expect("--warmup N"),
            "--seed" => cfg.seed = take(&mut i).parse().expect("--seed N"),
            "--json" => json_path = Some(take(&mut i)),
            "--help" | "-h" => {
                println!(
                    "figure6 — regenerate the paper's Fig. 6 table\n\
                     options: --lines N --heavy-lines N --words N --iters N --warmup N --seed N --json PATH"
                );
                return;
            }
            other => {
                eprintln!("unknown option {other}; try --help");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    eprintln!(
        "measuring: light corpus {} lines x {} words, heavy corpus {} lines, {} iterations (median)...",
        cfg.light_lines, cfg.words_per_line, cfg.heavy_lines, cfg.iterations
    );
    let measurements = run_figure6(&cfg);
    print!("{}", render_table(&measurements));

    println!("Raw medians:");
    for m in &measurements {
        println!(
            "  {:<12} {:<9} {:<13} {:>12.3?}  (norm {:.3})",
            m.weight, m.suite, m.variant, m.median, m.normalized
        );
    }
    println!();

    println!("Shape checks against the paper's Sec. VII observations:");
    let findings = shape_findings(&measurements);
    let mut all_ok = true;
    for (text, ok) in &findings {
        println!("  [{}] {}", if *ok { "ok" } else { "MISMATCH" }, text);
        all_ok &= ok;
    }
    if !all_ok {
        eprintln!(
            "note: shape mismatches can occur on small workloads or loaded machines; \
             rerun with larger --lines/--iters"
        );
    }

    // One untimed pass of the concat-heavy embedded program: the word
    // suite proper never concatenates, so this is what puts the builder
    // arena's counters (`gde.value.concat_slices` etc.) into the obs
    // snapshot below — the wiring gate checks they are non-zero there.
    {
        let corpus = wordcount::corpus::Corpus::generate(64, cfg.words_per_line.max(2), cfg.seed);
        let report = wordcount::embedded::frequency_report(&corpus);
        assert_eq!(
            report,
            wordcount::native::frequency_report(corpus.lines()),
            "embedded frequency report diverged from native"
        );
    }

    #[cfg(feature = "obs")]
    {
        // Register the environment counters even if nothing bumped them:
        // the fast-path claim is "zero by-name fallbacks", and the
        // snapshot should say `gde.env.name_fallbacks = 0` explicitly
        // rather than omit the metric.
        gde::obs_register();
        println!("Runtime observability snapshot (obs):");
        for line in obs::snapshot().render_text().lines() {
            println!("  {line}");
        }
        println!();
    }

    if let Some(path) = json_path {
        std::fs::write(&path, to_json(&cfg, &measurements)).expect("write json");
        eprintln!("wrote {path}");
    }
}

/// Minimal JSON rendering (hand-rolled; no serde in the hermetic
/// workspace). The layout is an object so the obs snapshot can ride along
/// with the timings — `BENCH_baseline.json` is this, committed.
fn to_json(cfg: &Figure6Config, m: &[bench::Measurement]) -> String {
    let rows: Vec<String> = m
        .iter()
        .map(|x| {
            format!(
                "    {{\"suite\": \"{}\", \"variant\": \"{}\", \"weight\": \"{}\", \"median_ns\": {}, \"normalized\": {}}}",
                x.suite,
                x.variant,
                x.weight,
                x.median.as_nanos(),
                x.normalized
            )
        })
        .collect();
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"figure6-v2\",\n");
    out.push_str(&format!(
        "  \"config\": {{\"light_lines\": {}, \"heavy_lines\": {}, \"words_per_line\": {}, \"iterations\": {}, \"warmup\": {}, \"seed\": {}, \"exec_threads\": {}}},\n",
        cfg.light_lines,
        cfg.heavy_lines,
        cfg.words_per_line,
        cfg.iterations,
        cfg.warmup,
        cfg.seed,
        // The effective pool width (EXEC_THREADS override or core count):
        // scaling runs are meaningless without it recorded next to the
        // timings.
        exec::global_threads()
    ));
    out.push_str(&format!(
        "  \"measurements\": [\n{}\n  ],\n",
        rows.join(",\n")
    ));
    #[cfg(feature = "obs")]
    out.push_str(&format!("  \"obs\": {}\n", obs::snapshot().render_json()));
    #[cfg(not(feature = "obs"))]
    out.push_str("  \"obs\": null\n");
    out.push_str("}\n");
    out
}
