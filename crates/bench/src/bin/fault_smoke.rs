//! Fault-plane smoke: drives deterministic fault-injection scenarios
//! through every recovery surface — `Retry` replay, `Propagate`,
//! degrading fan-in, and pool containment — then writes a
//! `fault-smoke-v1` snapshot for the CI `faults` gate
//! (`gates --faults-json`).
//!
//!     cargo run -p bench --release --features faultinj \
//!         --bin fault_smoke -- FAULTS_ci.json
//!
//! The run self-arms via [`faultinj::scenario`] (replacing whatever a
//! stray `FAULTS` env var configured — the gate asserts exact counter
//! behavior, so ad-hoc env scenarios cannot ride along) and asserts the
//! recovery semantics inline: a failed assertion here means the fault
//! plane regressed *before* the counter gate even runs.

use gde::comb::to_range;
use gde::{Gen, Step, Value};
use pipes::{FanPolicy, FaultPolicy, Pipe};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

fn drain(g: &mut dyn Gen) -> Vec<i64> {
    let mut got = Vec::new();
    while let Step::Suspend(v) = g.resume() {
        got.push(v.as_int().expect("int stream"));
    }
    got
}

fn ints(n: i64) -> impl Fn() -> gde::BoxGen + Send + Sync + 'static {
    move || Box::new(to_range(1, n, 1))
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| {
        eprintln!("usage: fault_smoke OUT.json");
        std::process::exit(2);
    });

    // Force-register every fault counter so the snapshot carries explicit
    // zeros (the gate treats a missing key as a rename, loudly).
    pipes::obs_register();
    exec::obs_register();
    faultinj::obs_register();

    // The env config (FAULTS) is parsed lazily at the first hit; burn it
    // on an unarmed warmup site so the scenarios below fully own the
    // registry.
    faultinj::hit("fault_smoke.env_warmup");

    // 1. Retry: an injected producer panic after a two-value clean prefix
    // must replay bitwise (pipes.faults.retries, faults.injected).
    faultinj::scenario("pipes.producer.resume:panic@3");
    let mut p = Pipe::batched(ints(200), 8, 8).with_policy(FaultPolicy::Retry {
        limit: 1,
        backoff: Duration::from_millis(1),
    });
    let got = drain(&mut p);
    let expect: Vec<i64> = (1..=200).collect();
    assert_eq!(got, expect, "Retry must replay the stream bitwise");
    assert_eq!(p.retries(), 1, "exactly one respawn");

    // 2. Propagate (default): the fault surfaces as a panic, never a
    // clean EOS (pipes.faults.propagated, blockingq.close.failed).
    faultinj::scenario("pipes.producer.resume:panic@2");
    let mut p = Pipe::batched(ints(10), 1, 1);
    let boom = catch_unwind(AssertUnwindSafe(|| drain(&mut p)));
    assert!(boom.is_err(), "Propagate must panic, not end cleanly");
    assert!(p.fault().is_some(), "the fault stays inspectable");

    // 3. Degrading fan-in: the faulted source is dropped and counted,
    // the survivor delivers in full (pipes.faults.degraded_sources).
    faultinj::scenario("pipes.merge.resume:panic@1");
    let sources: Vec<Box<dyn Fn() -> gde::BoxGen + Send + Sync>> = vec![
        Box::new(ints(5)),
        Box::new(|| Box::new(to_range(101, 105, 1))),
    ];
    let mut m = pipes::merge(sources, 4)
        .with_batch(1)
        .with_policy(FanPolicy::Degrade);
    let got = drain(&mut m);
    assert_eq!(m.degraded_sources(), 1, "exactly one source dropped");
    let full_low = got.iter().filter(|v| **v <= 100).count() == 5;
    let full_high = got.iter().filter(|v| **v > 100).count() == 5;
    assert!(
        full_low || full_high,
        "the surviving source delivers in full: {got:?}"
    );

    // 4. Pool containment: an injected job panic is absorbed by the
    // worker, later jobs still run (exec.pool.contained_panics).
    faultinj::scenario("exec.worker.job:panic@1");
    let pool = exec::ThreadPool::new(1);
    pool.execute(|| {});
    let probe = pool.submit(|| Value::Int(7));
    assert_eq!(probe.join().as_int(), Some(7), "the worker survived");
    assert_eq!(pool.contained_panics(), 1, "exactly one containment");
    pool.shutdown();

    faultinj::disarm_all();

    let injected = faultinj::injected();
    assert!(injected >= 4, "four scenarios must inject: {injected}");

    let json = format!(
        "{{\n  \"schema\": \"fault-smoke-v1\",\n  \"injected\": {injected},\n  \"obs\": {}\n}}\n",
        obs::snapshot().render_json()
    );
    std::fs::write(&out_path, &json).unwrap_or_else(|e| {
        eprintln!("fault_smoke: cannot write {out_path}: {e}");
        std::process::exit(2);
    });
    println!("fault_smoke: {injected} faults injected, all recovery surfaces healthy");
    println!("fault_smoke: wrote {out_path}");
}
