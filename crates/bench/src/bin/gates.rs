//! CI gate runner: evaluates the regression gates against a figure6 JSON
//! snapshot and prints one PASS/FAIL/SKIP line per gate.
//!
//!     cargo run -p bench --release --bin gates -- \
//!         --json BENCH_ci.json \
//!         --max-blocked-take-ratio 0.0747 \
//!         --max-seq-lw-ratio 1.53 \
//!         [--strict] [--baseline BENCH_baseline.json] \
//!         [--schedtest-json SCHEDTEST_ci.json] \
//!         [--faults-json FAULTS_ci.json]
//!
//! Exit code 1 on any FAIL, or on any SKIP under `--strict` (CI sets
//! strict so an accidentally obs-less bench build cannot silently turn
//! the counter gates off). `--baseline` additionally prints a report-only
//! per-cell drift table against the committed baseline snapshot.
//! `--schedtest-json` points at the JSON-lines summary the schedule-
//! exploration smoke appends (SCHEDTEST_JSON); without the flag that gate
//! reports SKIP (strict CI turns the skip into a failure, so CI cannot
//! quietly drop the smoke). `--faults-json` points at the `fault-smoke-v1`
//! snapshot the `fault_smoke` binary writes; same SKIP-unless-passed
//! contract, so CI cannot quietly drop the fault-plane smoke either.

use bench::gates::{run_gates, GateStatus, Thresholds};
use bench::json::Json;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: gates --json PATH --max-blocked-take-ratio R --max-seq-lw-ratio R \
         [--strict] [--baseline PATH] [--schedtest-json PATH] [--faults-json PATH]"
    );
    std::process::exit(2);
}

fn load(path: &str) -> Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("gates: cannot read {path}: {e}");
        std::process::exit(2);
    });
    Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("gates: {path} is not valid JSON: {e}");
        std::process::exit(2);
    })
}

fn main() -> ExitCode {
    let mut json_path: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut schedtest_path: Option<String> = None;
    let mut faults_path: Option<String> = None;
    let mut max_blocked_take_ratio: Option<f64> = None;
    let mut max_seq_lw_ratio: Option<f64> = None;
    let mut strict = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("gates: {what} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--json" => json_path = Some(value("--json")),
            "--baseline" => baseline_path = Some(value("--baseline")),
            "--schedtest-json" => schedtest_path = Some(value("--schedtest-json")),
            "--faults-json" => faults_path = Some(value("--faults-json")),
            "--max-blocked-take-ratio" => {
                max_blocked_take_ratio = value("--max-blocked-take-ratio").parse().ok()
            }
            "--max-seq-lw-ratio" => max_seq_lw_ratio = value("--max-seq-lw-ratio").parse().ok(),
            "--strict" => strict = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("gates: unknown argument {other}");
                usage();
            }
        }
    }

    let (Some(json_path), Some(max_blocked_take_ratio), Some(max_seq_lw_ratio)) =
        (json_path, max_blocked_take_ratio, max_seq_lw_ratio)
    else {
        usage();
    };

    let doc = load(&json_path);
    let th = Thresholds {
        max_blocked_take_ratio,
        max_seq_lw_ratio,
    };

    let mut reports = run_gates(&doc, &th);
    reports.push(match &schedtest_path {
        None => bench::gates::GateReport {
            name: "schedtest",
            status: GateStatus::Skip,
            detail: "no --schedtest-json (schedule-exploration smoke not run)".into(),
        },
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => bench::gates::schedtest_gate(&text),
            Err(e) => bench::gates::GateReport {
                name: "schedtest",
                status: GateStatus::Fail,
                detail: format!("cannot read {path}: {e}"),
            },
        },
    });
    reports.push(match &faults_path {
        None => bench::gates::GateReport {
            name: "faults",
            status: GateStatus::Skip,
            detail: "no --faults-json (fault-plane smoke not run)".into(),
        },
        Some(path) => bench::gates::faults_gate(&load(path)),
    });
    let mut failed = false;
    let mut skipped = false;
    for r in &reports {
        let tag = match r.status {
            GateStatus::Pass => "PASS",
            GateStatus::Fail => {
                failed = true;
                "FAIL"
            }
            GateStatus::Skip => {
                skipped = true;
                "SKIP"
            }
        };
        println!(
            "[gate] {tag} {name}: {detail}",
            name = r.name,
            detail = r.detail
        );
    }

    if let Some(baseline_path) = baseline_path {
        let baseline = load(&baseline_path);
        println!("\n[drift] per-cell medians vs {baseline_path} (report-only):");
        match bench::gates::drift_table(&doc, &baseline) {
            Ok(table) => print!("{table}"),
            Err(e) => println!("[drift] not available: {e}"),
        }
    }

    if failed {
        ExitCode::from(1)
    } else if skipped && strict {
        eprintln!("gates: skipped gates are failures under --strict");
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
