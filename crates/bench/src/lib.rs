//! Benchmark harness for the paper's evaluation (Sec. VII, Fig. 6) and the
//! ablation studies listed in DESIGN.md.
//!
//! Fig. 6 reports *normalized execution time* (log scale) for sixteen bars:
//! {Lightweight, Heavyweight} × {Junicon, Java} × {Sequential, Pipeline,
//! DataParallel, MapReduce}, normalized within each weight set to the Java
//! parallel-stream (native MapReduce) time. [`run_figure6`] measures the
//! same matrix on this machine and [`render_table`] prints it in the same
//! layout; `cargo run -p bench --release --bin figure6` regenerates the
//! figure's data, and the criterion benches provide statistically
//! disciplined per-cell timings.

pub mod gates;
pub mod json;

use std::time::{Duration, Instant};
use wordcount::{run_cell, Corpus, Suite, Variant, Weight};

/// One measured cell of the Fig. 6 matrix.
///
/// Serialized to JSON by the hand-rolled writer in the `figure6` binary
/// (no serde: the workspace is hermetic, see DESIGN.md § "Hermetic build").
#[derive(Clone, Debug)]
pub struct Measurement {
    pub suite: &'static str,
    pub variant: &'static str,
    pub weight: &'static str,
    pub median: Duration,
    /// Execution time normalized to the native MapReduce bar of the same
    /// weight set (the paper's normalization).
    pub normalized: f64,
}

/// Workload configuration for a Fig. 6 run.
#[derive(Clone, Copy, Debug)]
pub struct Figure6Config {
    /// Corpus shape for the lightweight set.
    pub light_lines: usize,
    /// Corpus shape for the heavyweight set (smaller: each node is ~80x).
    pub heavy_lines: usize,
    pub words_per_line: usize,
    /// Timed iterations per cell (median is reported).
    pub iterations: usize,
    /// Warmup iterations per cell.
    pub warmup: usize,
    pub seed: u64,
}

impl Default for Figure6Config {
    fn default() -> Self {
        Figure6Config {
            light_lines: 2_000,
            heavy_lines: 100,
            words_per_line: 10,
            iterations: 7,
            warmup: 2,
            seed: 2016,
        }
    }
}

/// Median-of-N timing of one cell.
pub fn time_cell(
    suite: Suite,
    variant: Variant,
    corpus: &Corpus,
    weight: Weight,
    warmup: usize,
    iterations: usize,
) -> Duration {
    for _ in 0..warmup {
        std::hint::black_box(run_cell(suite, variant, corpus, weight));
    }
    let mut samples: Vec<Duration> = (0..iterations.max(1))
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(run_cell(suite, variant, corpus, weight));
            t0.elapsed()
        })
        .collect();
    samples.sort();
    samples[samples.len() / 2]
}

/// Measure the full sixteen-bar matrix.
pub fn run_figure6(cfg: &Figure6Config) -> Vec<Measurement> {
    let mut out = Vec::new();
    for weight in [Weight::Light, Weight::Heavy] {
        let lines = match weight {
            Weight::Light => cfg.light_lines,
            Weight::Heavy => cfg.heavy_lines,
        };
        let corpus = Corpus::generate(lines, cfg.words_per_line, cfg.seed);
        // The normalization baseline: native MapReduce ("Java parallel
        // stream").
        let baseline = time_cell(
            Suite::Native,
            Variant::MapReduce,
            &corpus,
            weight,
            cfg.warmup,
            cfg.iterations,
        );
        for suite in [Suite::Embedded, Suite::Native] {
            for variant in Variant::ALL {
                let median = if suite == Suite::Native && variant == Variant::MapReduce {
                    baseline
                } else {
                    time_cell(suite, variant, &corpus, weight, cfg.warmup, cfg.iterations)
                };
                out.push(Measurement {
                    suite: suite.name(),
                    variant: variant.name(),
                    weight: weight.name(),
                    median,
                    normalized: median.as_secs_f64() / baseline.as_secs_f64(),
                });
            }
        }
    }
    out
}

/// Render the measurements as the Fig. 6 table (normalized, per weight
/// set, Junicon and native bars side by side).
pub fn render_table(measurements: &[Measurement]) -> String {
    let mut out = String::new();
    out.push_str(
        "Figure 6 — Performance when translated to Rust\n\
         (execution time normalized to native MapReduce within each weight set)\n\n",
    );
    for weight in ["Lightweight", "Heavyweight"] {
        out.push_str(&format!("{weight}\n"));
        out.push_str(&format!(
            "  {:<14}{:>12}{:>12}{:>18}\n",
            "Variant", "Junicon", "Native", "Junicon/Native"
        ));
        for variant in Variant::ALL {
            let get = |suite: &str| {
                measurements
                    .iter()
                    .find(|m| m.weight == weight && m.variant == variant.name() && m.suite == suite)
                    .expect("complete matrix")
            };
            let junicon = get("Junicon");
            let native = get("Native");
            out.push_str(&format!(
                "  {:<14}{:>12.3}{:>12.3}{:>17.2}x\n",
                variant.name(),
                junicon.normalized,
                native.normalized,
                junicon.normalized / native.normalized
            ));
        }
        out.push('\n');
    }
    out
}

/// Shape checks corresponding to the paper's Sec. VII observations; returns
/// human-readable findings (used by the figure6 binary and EXPERIMENTS.md).
pub fn shape_findings(measurements: &[Measurement]) -> Vec<(String, bool)> {
    let norm = |weight: &str, suite: &str, variant: Variant| {
        measurements
            .iter()
            .find(|m| m.weight == weight && m.suite == suite && m.variant == variant.name())
            .expect("complete matrix")
            .normalized
    };
    let mut findings = Vec::new();

    // 1. Embedded generators are slower than native, but "the penalty is
    //    well under an order of magnitude" (lightweight set).
    let worst_gap = Variant::ALL
        .iter()
        .map(|v| norm("Lightweight", "Junicon", *v) / norm("Lightweight", "Native", *v))
        .fold(0.0f64, f64::max);
    findings.push((
        format!("lightweight Junicon/native worst-case gap = {worst_gap:.1}x (paper: <10x)"),
        worst_gap < 10.0,
    ));

    // 2. "As the weight of the computational nodes increases, the relative
    //    overhead of the embedded concurrent generators significantly
    //    decreases."
    let heavy_gap = Variant::ALL
        .iter()
        .map(|v| norm("Heavyweight", "Junicon", *v) / norm("Heavyweight", "Native", *v))
        .fold(0.0f64, f64::max);
    findings.push((
        format!(
            "heavyweight worst-case gap = {heavy_gap:.2}x vs lightweight {worst_gap:.1}x (paper: decreases)"
        ),
        heavy_gap < worst_gap,
    ));

    // 3. "Even with map-reduce expressed entirely using concurrent
    //    generators, the performance impact on the right of Figure 6 is
    //    negligible."
    let mr_heavy = norm("Heavyweight", "Junicon", Variant::MapReduce);
    findings.push((
        format!("heavyweight Junicon MapReduce normalized = {mr_heavy:.2} (paper: ~1, negligible)"),
        mr_heavy < 1.5,
    ));

    // 4. Parallel variants beat sequential at heavyweight (both suites).
    //    On a single-core machine there is no parallelism to win from, so
    //    the check degrades to "MapReduce within 20% of Sequential"
    //    (coordination overhead only) — the paper's testbed had 64 cores.
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    for suite in ["Junicon", "Native"] {
        let seq = norm("Heavyweight", suite, Variant::Sequential);
        let mr = norm("Heavyweight", suite, Variant::MapReduce);
        if cores > 1 {
            findings.push((
                format!(
                    "heavyweight {suite}: MapReduce ({mr:.2}) faster than Sequential ({seq:.2}) [{cores} cores]"
                ),
                mr < seq,
            ));
        } else {
            findings.push((
                format!(
                    "heavyweight {suite}: MapReduce ({mr:.2}) within 20% of Sequential ({seq:.2}) [single core: no speedup available]"
                ),
                mr < seq * 1.2,
            ));
        }
    }

    // 5. "The relative improvement among the embedded programs is roughly
    //    consistent with that of the comparable Java programs": each
    //    variant's normalized time agrees across suites within a factor
    //    (at heavyweight the suites should track each other closely; a
    //    fastest-variant comparison is meaningless on one core where all
    //    variants tie within noise).
    let max_ratio = Variant::ALL
        .iter()
        .map(|v| {
            let j = norm("Heavyweight", "Junicon", *v);
            let n = norm("Heavyweight", "Native", *v);
            (j / n).max(n / j)
        })
        .fold(0.0f64, f64::max);
    findings.push((
        format!(
            "heavyweight per-variant Junicon/native agreement within {max_ratio:.2}x (paper: relative ordering preserved)"
        ),
        max_ratio < 1.5,
    ));

    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_is_complete_and_normalized() {
        let cfg = Figure6Config {
            light_lines: 30,
            heavy_lines: 5,
            words_per_line: 5,
            iterations: 1,
            warmup: 0,
            seed: 1,
        };
        let m = run_figure6(&cfg);
        assert_eq!(m.len(), 16);
        // The baseline bar normalizes to exactly 1.0 in each weight set.
        for weight in ["Lightweight", "Heavyweight"] {
            let base = m
                .iter()
                .find(|x| x.weight == weight && x.suite == "Native" && x.variant == "MapReduce")
                .expect("baseline bar exists");
            assert_eq!(base.normalized, 1.0);
        }
        let table = render_table(&m);
        assert!(table.contains("Lightweight"));
        assert!(table.contains("MapReduce"));
        // findings evaluate without panicking on a complete matrix
        let findings = shape_findings(&m);
        assert_eq!(findings.len(), 6);
    }
}
