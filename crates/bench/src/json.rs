//! A minimal JSON reader for the bench snapshots.
//!
//! The hermetic workspace has no serde; the gate binary needs to read
//! `BENCH_ci.json` *structurally* (the grep/awk gates it replaces broke
//! silently whenever a key was renamed). This is a small recursive-descent
//! parser for the JSON subset the harness emits — objects, arrays,
//! strings with escapes, numbers, booleans, null — that reports parse
//! errors with a byte offset instead of guessing.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Walk a path of member lookups.
    pub fn path(&self, keys: &[&str]) -> Option<&Json> {
        let mut cur = self;
        for k in keys {
            cur = cur.get(k)?;
        }
        Some(cur)
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_word(&mut self, w: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(w.as_bytes()) {
            self.pos += w.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{w}'")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat_word("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.eat_word("false").map(|()| Json::Bool(false)),
            Some(b'n') => self.eat_word("null").map(|()| Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut m = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(m));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            m.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(m));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut v = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(v));
        }
        loop {
            self.skip_ws();
            v.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(v));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b't') => s.push('\t'),
                        Some(b'r') => s.push('\r'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid by construction).
                    let start = self.pos;
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|b| b & 0xc0 == 0x80) {
                        self.pos += 1;
                    }
                    s.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|t| t.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_snapshot_shapes() {
        let doc = Json::parse(
            r#"{"schema": "figure6-v2", "config": {"n": 3}, "measurements": [
                {"suite": "Junicon", "median_ns": 123, "normalized": 1.5}
            ], "obs": null}"#,
        )
        .unwrap();
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some("figure6-v2"));
        assert!(doc.get("obs").unwrap().is_null());
        let rows = doc.get("measurements").and_then(Json::as_arr).unwrap();
        assert_eq!(rows[0].get("median_ns").and_then(Json::as_u64), Some(123));
        assert_eq!(rows[0].get("normalized").and_then(Json::as_f64), Some(1.5));
    }

    #[test]
    fn escapes_and_unicode() {
        let doc = Json::parse(r#"{"k": "a\"b\\c\ndéé"}"#).unwrap();
        assert_eq!(doc.get("k").and_then(Json::as_str), Some("a\"b\\c\ndéé"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("{}x").is_err());
        assert!(Json::parse(r#"{"a" 1}"#).is_err());
        assert!(Json::parse("[1,]").is_err());
    }

    #[test]
    fn negative_and_float_numbers() {
        let doc = Json::parse("[-3, 2.5, 1e3]").unwrap();
        let v = doc.as_arr().unwrap();
        assert_eq!(v[0].as_f64(), Some(-3.0));
        assert_eq!(v[0].as_u64(), None);
        assert_eq!(v[1].as_f64(), Some(2.5));
        assert_eq!(v[2].as_f64(), Some(1000.0));
    }
}
