//! Fixture tests for the CI gate library.
//!
//! Each fixture under `tests/fixtures/` is a hand-written figure6
//! snapshot exercising one behavior: the passing shape, each gate
//! tripping individually, the legitimate obs-null skip, and — the cases
//! the old grep gates got wrong — snapshots whose keys were renamed,
//! which must FAIL loudly instead of silently skipping.

use bench::gates::{drift_table, run_gates, GateReport, GateStatus, Thresholds};
use bench::json::Json;

/// The thresholds scripts/ci.sh passes (see the derivation note there).
const TH: Thresholds = Thresholds {
    max_blocked_take_ratio: 0.0747,
    max_seq_lw_ratio: 1.61,
};

fn gate_on(fixture: &str) -> Vec<GateReport> {
    let doc = Json::parse(fixture).expect("fixture parses");
    run_gates(&doc, &TH)
}

fn status_of<'a>(reports: &'a [GateReport], name: &str) -> &'a GateReport {
    reports
        .iter()
        .find(|r| r.name == name)
        .unwrap_or_else(|| panic!("no report for gate {name}"))
}

const ALL_GATES: [&str; 6] = [
    "schema",
    "contention",
    "fusion",
    "compact-values",
    "concat-slices",
    "seq-lw-ratio",
];

#[test]
fn passing_snapshot_passes_every_gate() {
    let reports = gate_on(include_str!("fixtures/passing.json"));
    assert_eq!(reports.len(), ALL_GATES.len());
    for name in ALL_GATES {
        let r = status_of(&reports, name);
        assert_eq!(r.status, GateStatus::Pass, "{name}: {}", r.detail);
    }
}

#[test]
fn contention_gate_trips_alone() {
    let reports = gate_on(include_str!("fixtures/contention_trip.json"));
    for name in ALL_GATES {
        let r = status_of(&reports, name);
        let want = if name == "contention" {
            GateStatus::Fail
        } else {
            GateStatus::Pass
        };
        assert_eq!(r.status, want, "{name}: {}", r.detail);
    }
    assert!(
        status_of(&reports, "contention").detail.contains("0.45"),
        "detail carries the measured ratio"
    );
}

#[test]
fn fusion_gate_trips_alone() {
    let reports = gate_on(include_str!("fixtures/fusion_trip.json"));
    for name in ALL_GATES {
        let r = status_of(&reports, name);
        let want = if name == "fusion" {
            GateStatus::Fail
        } else {
            GateStatus::Pass
        };
        assert_eq!(r.status, want, "{name}: {}", r.detail);
    }
}

#[test]
fn compact_values_gate_trips_alone() {
    let reports = gate_on(include_str!("fixtures/compact_trip.json"));
    for name in ALL_GATES {
        let r = status_of(&reports, name);
        let want = if name == "compact-values" {
            GateStatus::Fail
        } else {
            GateStatus::Pass
        };
        assert_eq!(r.status, want, "{name}: {}", r.detail);
    }
}

#[test]
fn concat_slices_gate_trips_alone() {
    let reports = gate_on(include_str!("fixtures/concat_trip.json"));
    for name in ALL_GATES {
        let r = status_of(&reports, name);
        let want = if name == "concat-slices" {
            GateStatus::Fail
        } else {
            GateStatus::Pass
        };
        assert_eq!(r.status, want, "{name}: {}", r.detail);
    }
    assert!(
        status_of(&reports, "concat-slices")
            .detail
            .contains("builder"),
        "detail points at the builder arena"
    );
}

#[test]
fn seq_lw_ratio_gate_trips_alone() {
    let reports = gate_on(include_str!("fixtures/ratio_trip.json"));
    for name in ALL_GATES {
        let r = status_of(&reports, name);
        let want = if name == "seq-lw-ratio" {
            GateStatus::Fail
        } else {
            GateStatus::Pass
        };
        assert_eq!(r.status, want, "{name}: {}", r.detail);
    }
    assert!(
        status_of(&reports, "seq-lw-ratio").detail.contains("2.100"),
        "detail carries the measured ratio"
    );
}

#[test]
fn obs_null_skips_counter_gates_only() {
    // A snapshot produced without the obs feature: the counter gates are
    // legitimately uncheckable (SKIP, never PASS), while the schema and
    // the median-based ratio gate still run.
    let reports = gate_on(include_str!("fixtures/obs_null.json"));
    for (name, want) in [
        ("schema", GateStatus::Pass),
        ("contention", GateStatus::Skip),
        ("fusion", GateStatus::Skip),
        ("compact-values", GateStatus::Skip),
        ("concat-slices", GateStatus::Skip),
        ("seq-lw-ratio", GateStatus::Pass),
    ] {
        let r = status_of(&reports, name);
        assert_eq!(r.status, want, "{name}: {}", r.detail);
    }
}

#[test]
fn renamed_median_key_fails_loudly() {
    // `median_ns` renamed to `median_nanos`: the grep gates this library
    // replaced would have skipped; the schema gate must fail instead, and
    // the remaining gates must report failed-not-evaluated, not pass.
    let reports = gate_on(include_str!("fixtures/renamed_median_key.json"));
    for name in ALL_GATES {
        let r = status_of(&reports, name);
        assert_eq!(r.status, GateStatus::Fail, "{name}: {}", r.detail);
    }
    assert!(
        status_of(&reports, "schema").detail.contains("median_ns"),
        "schema detail names the missing key"
    );
}

#[test]
fn renamed_counter_key_fails_loudly() {
    // The fused-stages counter renamed: an obs snapshot is present, so a
    // missing metric is a rename/unregistration bug, not an obs-off skip.
    let reports = gate_on(include_str!("fixtures/renamed_counter_key.json"));
    let r = status_of(&reports, "fusion");
    assert_eq!(r.status, GateStatus::Fail, "fusion: {}", r.detail);
    assert!(r.detail.contains("gde.comb.fused_stages"));
    // Gates whose inputs are intact still evaluate normally.
    assert_eq!(status_of(&reports, "contention").status, GateStatus::Pass);
    assert_eq!(
        status_of(&reports, "compact-values").status,
        GateStatus::Pass
    );
    assert_eq!(status_of(&reports, "seq-lw-ratio").status, GateStatus::Pass);
}

#[test]
fn malformed_json_is_a_parse_error_not_a_skip() {
    assert!(Json::parse("{\"schema\": \"figure6-v2\",").is_err());
    assert!(Json::parse("").is_err());
}

#[test]
fn drift_table_reports_per_cell_deltas() {
    let current = Json::parse(include_str!("fixtures/ratio_trip.json")).unwrap();
    let baseline = Json::parse(include_str!("fixtures/passing.json")).unwrap();
    let table = drift_table(&current, &baseline).unwrap();
    // 2100000 vs 1330000 ≈ +57.9% median; the native cell is unchanged.
    assert!(table.contains("+57.9%"), "table:\n{table}");
    assert!(table.contains("+0.0%"), "table:\n{table}");
    // Scale-free column: normalized 2.2 vs 1.4 ≈ +57.1%.
    assert!(table.contains("+57.1%"), "table:\n{table}");
    // A cell missing from the baseline is marked new, not an error.
    let partial = Json::parse(
        r#"{"schema": "figure6-v2", "config": {}, "measurements": [
            {"suite": "Native", "variant": "Sequential", "weight": "Lightweight", "median_ns": 1000000, "normalized": 1.0}
        ], "obs": null}"#,
    )
    .unwrap();
    let table = drift_table(&current, &partial).unwrap();
    assert!(table.contains("new"), "table:\n{table}");
}

// --- schedule-exploration smoke gate ----------------------------------------
//
// `schedtest_gate` reads the JSON-lines summary the model suites append
// under SCHEDTEST_JSON (crates/schedtest); it is keyed off a text blob,
// not the figure6 snapshot, so it gets its own fixture set here.

use bench::gates::schedtest_gate;

#[test]
fn schedtest_summary_with_explored_schedules_passes() {
    let r = schedtest_gate(include_str!("fixtures/schedtest_passing.jsonl"));
    assert_eq!(r.status, GateStatus::Pass, "{}", r.detail);
    assert!(
        r.detail.contains("3 explorations") && r.detail.contains("6863 schedules"),
        "detail sums the lines: {}",
        r.detail
    );
}

#[test]
fn schedtest_empty_summary_fails() {
    // An empty (or whitespace-only) file means the smoke ran no model
    // tests at all — FAIL, not skip: the file existing proves the step
    // was attempted.
    for text in ["", "\n\n"] {
        let r = schedtest_gate(text);
        assert_eq!(r.status, GateStatus::Fail, "{}", r.detail);
        assert!(r.detail.contains("zero explorations"), "{}", r.detail);
    }
}

#[test]
fn schedtest_zero_schedules_fails() {
    // Lines parse but nothing was explored: the cfg flag was mis-wired
    // and the model tests compiled out.
    let text = "{\"schema\":\"schedtest-v1\",\"test\":\"t\",\"mode\":\"dfs\",\
                \"explored_schedules\":0,\"complete\":true,\"failed\":false}\n";
    let r = schedtest_gate(text);
    assert_eq!(r.status, GateStatus::Fail, "{}", r.detail);
    assert!(r.detail.contains("sums to 0"), "{}", r.detail);
}

#[test]
fn schedtest_failed_exploration_fails_and_names_the_test() {
    let text = "{\"schema\":\"schedtest-v1\",\"test\":\"ok_one\",\"mode\":\"dfs\",\
                \"explored_schedules\":10,\"complete\":true,\"failed\":false}\n\
                {\"schema\":\"schedtest-v1\",\"test\":\"bad_one\",\"mode\":\"dfs\",\
                \"explored_schedules\":7,\"complete\":false,\"failed\":true}\n";
    let r = schedtest_gate(text);
    assert_eq!(r.status, GateStatus::Fail, "{}", r.detail);
    assert!(r.detail.contains("bad_one"), "{}", r.detail);
}

#[test]
fn schedtest_malformed_line_fails_with_line_number() {
    let text = "{\"schema\":\"schedtest-v1\",\"test\":\"t\",\"mode\":\"dfs\",\
                \"explored_schedules\":5,\"complete\":true,\"failed\":false}\n\
                not json at all\n";
    let r = schedtest_gate(text);
    assert_eq!(r.status, GateStatus::Fail, "{}", r.detail);
    assert!(r.detail.contains("line 2"), "{}", r.detail);
}

// --- fault-plane smoke gate --------------------------------------------------
//
// `faults_gate` reads the `fault-smoke-v1` snapshot the fault_smoke
// binary writes: every fault counter must be present AND non-zero after
// the smoke scenarios, so a rename and a dead surface both FAIL loudly.

use bench::gates::faults_gate;

fn faults_on(fixture: &str) -> GateReport {
    faults_gate(&Json::parse(fixture).expect("fixture parses"))
}

#[test]
fn faults_smoke_snapshot_passes_and_lists_counters() {
    let r = faults_on(include_str!("fixtures/faults_passing.json"));
    assert_eq!(r.status, GateStatus::Pass, "{}", r.detail);
    for key in [
        "faults.injected",
        "pipes.faults.propagated",
        "pipes.faults.retries",
        "pipes.faults.degraded_sources",
        "blockingq.close.failed",
    ] {
        assert!(r.detail.contains(key), "detail lists {key}: {}", r.detail);
    }
}

#[test]
fn faults_renamed_counter_fails_loudly() {
    // `pipes.faults.retries` renamed: an obs snapshot is present, so the
    // missing key is a rename/unregistration bug, never a skip.
    let fixture = include_str!("fixtures/faults_passing.json")
        .replace("pipes.faults.retries", "pipes.faults.retry_count");
    let r = faults_on(&fixture);
    assert_eq!(r.status, GateStatus::Fail, "{}", r.detail);
    assert!(r.detail.contains("pipes.faults.retries"), "{}", r.detail);
}

#[test]
fn faults_dead_surface_fails() {
    // A counter stuck at zero means that recovery surface no longer
    // reaches the fault plane under the smoke scenarios.
    let fixture = include_str!("fixtures/faults_passing.json").replace(
        "\"pipes.faults.degraded_sources\": {\"kind\": \"counter\", \"value\": 1}",
        "\"pipes.faults.degraded_sources\": {\"kind\": \"counter\", \"value\": 0}",
    );
    let r = faults_on(&fixture);
    assert_eq!(r.status, GateStatus::Fail, "{}", r.detail);
    assert!(
        r.detail.contains("pipes.faults.degraded_sources = 0"),
        "{}",
        r.detail
    );
}

#[test]
fn faults_zero_injected_fails() {
    let fixture =
        include_str!("fixtures/faults_passing.json").replace("\"injected\": 4", "\"injected\": 0");
    let r = faults_on(&fixture);
    assert_eq!(r.status, GateStatus::Fail, "{}", r.detail);
    assert!(r.detail.contains("armed no faults"), "{}", r.detail);
}

#[test]
fn faults_wrong_schema_or_missing_obs_fails() {
    let wrong_schema =
        include_str!("fixtures/faults_passing.json").replace("fault-smoke-v1", "fault-smoke-v2");
    let r = faults_on(&wrong_schema);
    assert_eq!(r.status, GateStatus::Fail, "{}", r.detail);
    assert!(r.detail.contains("fault-smoke-v1"), "{}", r.detail);

    // An obs-less fault_smoke build is a wiring failure, not a skip: the
    // binary's whole point is producing the counters.
    let r = faults_on(r#"{"schema": "fault-smoke-v1", "injected": 4, "obs": null}"#);
    assert_eq!(r.status, GateStatus::Fail, "{}", r.detail);
    assert!(r.detail.contains("obs"), "{}", r.detail);
}

#[test]
fn schedtest_wrong_schema_or_missing_count_fails() {
    let wrong_schema = "{\"schema\":\"schedtest-v2\",\"explored_schedules\":5}\n";
    let r = schedtest_gate(wrong_schema);
    assert_eq!(r.status, GateStatus::Fail, "{}", r.detail);
    assert!(r.detail.contains("schedtest-v1"), "{}", r.detail);

    let renamed_count = "{\"schema\":\"schedtest-v1\",\"test\":\"t\",\"mode\":\"dfs\",\
                         \"schedules\":5,\"complete\":true,\"failed\":false}\n";
    let r = schedtest_gate(renamed_count);
    assert_eq!(r.status, GateStatus::Fail, "{}", r.detail);
    assert!(r.detail.contains("explored_schedules"), "{}", r.detail);
}
