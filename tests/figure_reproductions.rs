//! End-to-end reproductions of the paper's figures as executable checks
//! (see DESIGN.md's experiment index).

use concurrent_generators::gde::{GenExt, Value};
use concurrent_generators::junicon::mixed::{run_mixed, transpile_mixed};
use concurrent_generators::junicon::Interp;
use concurrent_generators::wordcount::{run_cell, Corpus, Suite, Variant, Weight};

/// Fig. 2: the pipeline model (`f(!|>s)`) and the data-parallel model
/// (`every (c=chunk(s)) |> f(!c)`) compute the same stream.
#[test]
fn figure2_models_agree() {
    let i = Interp::new();
    i.load(
        r#"
        def f(x) { return x * x; }
        def chunk(e) {
            local c;
            c := [];
            while put(c, @e) do { if *c >= 5 then { suspend c; c := []; }; };
            if *c > 0 then { return c; };
        }
        def pipelineModel(n) { suspend f( ! (|> (1 to n)) ); }
        def dataParallelModel(n) {
            local c, tasks, t;
            tasks := [];
            every c := chunk(<> (1 to n)) do {
                t := |> f(!c);
                tasks::add(t);
            };
            suspend ! (! tasks);
        }
        "#,
    )
    .unwrap();
    let pipeline: Vec<i64> = i
        .eval("pipelineModel(20)")
        .unwrap()
        .iter()
        .map(|v| v.as_int().unwrap())
        .collect();
    let data_parallel: Vec<i64> = i
        .eval("dataParallelModel(20)")
        .unwrap()
        .iter()
        .map(|v| v.as_int().unwrap())
        .collect();
    let expect: Vec<i64> = (1..=20).map(|x| x * x).collect();
    assert_eq!(pipeline, expect);
    assert_eq!(data_parallel, expect);
}

/// Fig. 3: the full WordCount embedding — mixed-language source, host
/// natives, pipeline iteration from the host — agrees with native Rust.
#[test]
fn figure3_wordcount_embedding() {
    let corpus = Corpus::generate(40, 6, 3);
    let interp = Interp::new();
    interp.globals().declare("lines", corpus.as_value());
    interp.register_native("wordToNumber", |_t, args| {
        let w = args.first()?.as_str()?;
        concurrent_generators::bigint::BigUint::from_str_radix(w, 36)
            .ok()
            .map(|n| Value::big(n.into()))
    });
    interp.register_native("hashNumber", |_t, args| {
        let mag = match args.first()?.deref() {
            Value::Int(v) if v >= 0 => v as f64,
            Value::Big(b) => b.to_f64(),
            _ => return None,
        };
        Some(Value::Real(mag.sqrt()))
    });
    let loaded = run_mixed(
        r#"@<script lang="junicon">
            def readLines() { suspend !lines; }
            def splitWords(line) { suspend ! line::split("\\s+"); }
        @</script>"#,
        &interp,
    )
    .unwrap();
    assert_eq!(loaded, 1);

    let mut total = 0.0;
    let g = interp
        .gen("this::hashNumber( ! (|> this::wordToNumber( splitWords(readLines()))))")
        .unwrap();
    for v in concurrent_generators::gde::GenIter(g) {
        total += v.as_real().unwrap();
    }
    let reference =
        concurrent_generators::wordcount::native::sequential(corpus.lines(), Weight::Light);
    assert!((total - reference).abs() < reference * 1e-9);
}

/// Fig. 4: mapReduce written in Junicon with per-chunk pipes matches the
/// library DataParallel and the sequential reference.
#[test]
fn figure4_mapreduce_three_ways() {
    let i = Interp::new();
    i.load(
        r#"
        def chunk(e) {
            local c;
            c := [];
            while put(c, @e) do { if *c >= 10 then { suspend c; c := []; }; };
            if *c > 0 then { return c; };
        }
        def mapReduce(f, s, r, init) {
            local c, t, tasks;
            tasks := [];
            every c := chunk(s) do {
                t := |> { local x; x := init; every x := r(x, f(!c)); x };
                tasks::add(t);
            };
            suspend ! (! tasks);
        }
        def cube(x) { return x * x * x; }
        def plus(a, b) { return a + b; }
        "#,
    )
    .unwrap();
    let junicon_total: i64 = i
        .eval("mapReduce(cube, <> (1 to 50), plus, 0)")
        .unwrap()
        .iter()
        .map(|v| v.as_int().unwrap())
        .sum();

    let dp = concurrent_generators::mapreduce::DataParallel::new(10);
    let library_total: i64 = dp
        .map_reduce(
            |v| {
                let n = v.as_int()?;
                Some(Value::from(n * n * n))
            },
            concurrent_generators::gde::comb::to_range(1, 50, 1),
            |a, b| concurrent_generators::gde::ops::add(&a, &b),
            Value::from(0),
        )
        .collect_values()
        .iter()
        .map(|v| v.as_int().unwrap())
        .sum();

    let reference: i64 = (1..=50).map(|x| x * x * x).sum();
    assert_eq!(junicon_total, reference);
    assert_eq!(library_total, reference);
}

/// Fig. 5: the transpiled form of spawnMap exists as a checked fixture and
/// the transpile driver handles the whole mixed file (the executable check
/// of the emitted code itself lives in crates/junicon/tests/emitted_exec).
#[test]
fn figure5_transpilation_path() {
    let out = transpile_mixed(
        "@<script lang=\"junicon\"> def spawnMap(f, chunk) { suspend ! (|> f(!chunk)); } @</script>",
    )
    .unwrap();
    assert!(out.contains("pub fn proc_spawnMap"));
    assert!(out.contains("pipes::pipe_value"));
}

/// Fig. 6: all sixteen cells compute the same answer (the performance
/// shape itself is measured by `cargo run -p bench --bin figure6`).
#[test]
fn figure6_cells_are_consistent() {
    let corpus = Corpus::generate(30, 6, 6);
    for weight in [Weight::Light, Weight::Heavy] {
        let reference = run_cell(Suite::Native, Variant::Sequential, &corpus, weight);
        for suite in [Suite::Native, Suite::Embedded] {
            for variant in Variant::ALL {
                let v = run_cell(suite, variant, &corpus, weight);
                assert!(
                    (v - reference).abs() < reference.abs() * 1e-9,
                    "{}/{} diverged",
                    suite.name(),
                    variant.name()
                );
            }
        }
    }
}
