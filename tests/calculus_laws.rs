//! Cross-crate integration tests for the Fig. 1 calculus: the semantic laws
//! the paper states, checked across `gde`, `coexpr` and `pipes` together.

use concurrent_generators::coexpr::{activate, create, promote_co, refresh};
use concurrent_generators::gde::comb::{thunk, to_range};
use concurrent_generators::gde::env::Env;
use concurrent_generators::gde::{BoxGen, GenExt, Value};
use concurrent_generators::pipes::{pipe, pipe_value, Pipe};

fn ints(vals: Vec<Value>) -> Vec<i64> {
    vals.iter().map(|v| v.as_int().unwrap()).collect()
}

/// `<>e → new Iterator() { next() { return e; } }` — creation does not
/// evaluate; only `@` steps.
#[test]
fn creation_is_lazy() {
    let side = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let s2 = side.clone();
    let co = create(move || {
        s2.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        Box::new(to_range(1, 3, 1)) as BoxGen
    });
    assert_eq!(side.load(std::sync::atomic::Ordering::SeqCst), 0);
    activate(&co);
    assert_eq!(side.load(std::sync::atomic::Ordering::SeqCst), 1);
}

/// `!e → repeatUntilFailure(suspend @e)` — promotion agrees with repeated
/// activation.
#[test]
fn promotion_equals_repeated_activation() {
    let make = || create(|| Box::new(to_range(5, 9, 1)) as BoxGen);
    // via !
    let promoted = ints(promote_co(make()).collect_values());
    // via repeated @
    let co = make();
    let mut stepped = Vec::new();
    while let Some(v) = activate(&co) {
        stepped.push(v.as_int().unwrap());
    }
    assert_eq!(promoted, stepped);
}

/// `|<>e → ^(<>e)` — a fresh co-expression and a refreshed one have the
/// same sequence.
#[test]
fn refresh_equals_fresh() {
    let env = Env::root();
    env.declare("n", Value::from(4));
    let co = concurrent_generators::coexpr::create_shadowed(&env, |e| {
        let n = e.lookup("n").expect("shadowed");
        Box::new(thunk(move || Some(n.get())))
    });
    // consume, then refresh: the refreshed copy behaves like a new one
    activate(&co);
    let refreshed = refresh(&co).expect("refreshable");
    assert_eq!(activate(&refreshed).unwrap().as_int(), Some(4));
}

/// A pipe is an iterator proxy: same sequence as the unpiped expression.
#[test]
fn pipe_is_a_transparent_proxy() {
    let direct = ints(to_range(1, 50, 1).collect_values());
    let mut p = pipe(|| Box::new(to_range(1, 50, 1)));
    let piped = ints(p.collect_values());
    assert_eq!(direct, piped);
}

/// `@` on a pipe value is `out.take()`: stepping the proxy one at a time.
#[test]
fn pipe_value_steps_like_coexpression() {
    let p = pipe_value(|| Box::new(to_range(7, 9, 1)), 4);
    assert_eq!(activate(&p).unwrap().as_int(), Some(7));
    assert_eq!(activate(&p).unwrap().as_int(), Some(8));
    assert_eq!(activate(&p).unwrap().as_int(), Some(9));
    assert_eq!(activate(&p), None);
}

/// `^` on a pipe respawns the producer from the start.
#[test]
fn pipe_refresh_respawns() {
    let p = pipe_value(|| Box::new(to_range(1, 3, 1)), 4);
    activate(&p);
    activate(&p);
    let fresh = refresh(&p).expect("pipes are refreshable");
    assert_eq!(activate(&fresh).unwrap().as_int(), Some(1));
}

/// The paper's pipelining expression shape:
/// `x * ! |> factorial(! |> sqrt(y))` — two nested pipes compose with an
/// outer product, all stages on separate threads.
#[test]
fn nested_pipes_in_a_product() {
    // y = 1,4,9 ; sqrt stage ; factorial stage ; x = 10 multiplies.
    let sqrt_stage = || {
        Box::new(concurrent_generators::gde::comb::filter_map(
            to_range(1, 3, 1),
            |v| Some(Value::from(v.as_int().unwrap() * v.as_int().unwrap())),
        )) as BoxGen
    };
    let inner = Pipe::new(move || sqrt_stage());
    let outer = Pipe::new({
        let inner = std::sync::Arc::new(parking_lot::Mutex::new(Some(inner)));
        move || {
            let taken = inner.lock().take().expect("single spawn");
            Box::new(concurrent_generators::gde::comb::filter_map(taken, |v| {
                let n = v.as_int().unwrap();
                Some(Value::from((1..=n).product::<i64>()))
            })) as BoxGen
        }
    });
    let mut g = concurrent_generators::gde::comb::product_map(
        concurrent_generators::gde::comb::unit(Value::from(10)),
        {
            let outer = std::sync::Arc::new(parking_lot::Mutex::new(Some(outer)));
            move |_| Box::new(outer.lock().take().expect("single spawn")) as BoxGen
        },
        concurrent_generators::gde::ops::mul,
    );
    let got = ints(g.collect_values());
    // 10 * (1!, 4!, 9!) = 10, 240, 3628800
    assert_eq!(got, vec![10, 240, 3_628_800]);
}

/// Bounded queues throttle: a pipe with capacity 1 still yields the full
/// sequence, just with producer/consumer lockstep.
#[test]
fn throttled_pipe_is_correct() {
    let mut p = Pipe::with_capacity(|| Box::new(to_range(1, 200, 1)), 1);
    assert_eq!(ints(p.collect_values()), (1..=200).collect::<Vec<_>>());
}

/// Environment isolation across the whole stack: a co-expression shadow,
/// piped to another thread, never sees later host mutations.
#[test]
fn isolation_composes_across_layers() {
    let env = Env::root();
    env.declare("bound", Value::from(3));
    let shadowed_env = env.shadow();
    env.set("bound", Value::from(1000));
    let mut p = pipe(move || {
        let bound = shadowed_env.get("bound").as_int().unwrap();
        Box::new(to_range(1, bound, 1)) as BoxGen
    });
    assert_eq!(ints(p.collect_values()).len(), 3);
}
