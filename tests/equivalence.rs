//! Three-way equivalence: for a battery of programs, the interpreter, the
//! hand-built combinator trees, and (where a fixture exists) the emitted
//! Rust must produce identical sequences. This is the paper's refinement
//! story — "the relative observed performance among experimental
//! alternatives is preserved under refinement" presupposes the *results*
//! are preserved, which is what this file pins down.

use concurrent_generators::gde::comb::{alt, filter_map, limit, product_map, to_range};
use concurrent_generators::gde::{GenExt, Value};
use concurrent_generators::junicon::Interp;

fn interp_ints(src: &str) -> Vec<i64> {
    Interp::new()
        .eval(src)
        .unwrap_or_else(|e| panic!("{src}: {e}"))
        .iter()
        .map(|v| v.as_int().unwrap())
        .collect()
}

#[test]
fn ranges_agree() {
    assert_eq!(
        interp_ints("1 to 10 by 3"),
        to_range(1, 10, 3)
            .collect_values()
            .iter()
            .map(|v| v.as_int().unwrap())
            .collect::<Vec<_>>()
    );
}

#[test]
fn alternation_agrees() {
    let mut comb = alt(to_range(1, 2, 1), to_range(8, 9, 1));
    assert_eq!(
        interp_ints("(1 to 2) | (8 to 9)"),
        comb.collect_values()
            .iter()
            .map(|v| v.as_int().unwrap())
            .collect::<Vec<_>>()
    );
}

#[test]
fn product_with_filter_agrees() {
    // interpreter: (1 to 4) * ((1 to 4) % 2 = 0 filtered via comparison)
    let via_interp = interp_ints("(1 to 3) * isprime(2 to 5)");
    let mut comb = product_map(
        to_range(1, 3, 1),
        |_| {
            Box::new(filter_map(to_range(2, 5, 1), |v| {
                let n = v.as_int()?;
                if (2..n).all(|d| n % d != 0) {
                    Some(v.clone())
                } else {
                    None
                }
            }))
        },
        concurrent_generators::gde::ops::mul,
    );
    assert_eq!(
        via_interp,
        comb.collect_values()
            .iter()
            .map(|v| v.as_int().unwrap())
            .collect::<Vec<_>>()
    );
}

#[test]
fn limitation_agrees() {
    let mut comb = limit(to_range(1, 1000, 1), 4);
    assert_eq!(
        interp_ints("(1 to 1000) \\ 4"),
        comb.collect_values()
            .iter()
            .map(|v| v.as_int().unwrap())
            .collect::<Vec<_>>()
    );
}

#[test]
fn procedure_vs_native_function() {
    // A junicon generator function vs a registered Rust native of the
    // same meaning.
    let i = Interp::new();
    i.load("def doubleJ(x) { return x * 2; }").unwrap();
    i.register_proc(concurrent_generators::gde::ProcValue::native(
        "doubleR",
        |args| {
            concurrent_generators::gde::ops::mul(
                &concurrent_generators::gde::func::arg(args, 0),
                &Value::from(2),
            )
        },
    ));
    let a: Vec<i64> = i
        .eval("doubleJ(1 to 5)")
        .unwrap()
        .iter()
        .map(|v| v.as_int().unwrap())
        .collect();
    let b: Vec<i64> = i
        .eval("doubleR(1 to 5)")
        .unwrap()
        .iter()
        .map(|v| v.as_int().unwrap())
        .collect();
    assert_eq!(a, b);
}

#[test]
fn pipe_transparency_in_interpreter() {
    // Piping any expression must not change its sequence.
    for expr in ["1 to 7", "(1 to 3) * (1 to 3)", "isprime(2 to 30)"] {
        let direct = interp_ints(expr);
        let piped = interp_ints(&format!("! (|> ({expr}))"));
        assert_eq!(direct, piped, "pipe changed the sequence of {expr}");
    }
}

#[test]
fn coexpression_transparency_in_interpreter() {
    for expr in ["1 to 7", "(2 | 4 | 8) * 3"] {
        let direct = interp_ints(expr);
        let via_co = interp_ints(&format!("! (<> ({expr}))"));
        assert_eq!(direct, via_co, "co-expression changed {expr}");
    }
}

#[test]
fn wordcount_embedded_vs_native_vs_interpreted() {
    use concurrent_generators::wordcount::{embedded, native, Corpus, Weight};
    let corpus = Corpus::generate(30, 6, 123);

    // native Rust
    let a = native::sequential(corpus.lines(), Weight::Light);
    // combinator-built embedded
    let b = embedded::sequential(&corpus, Weight::Light);
    // fully interpreted
    let i = Interp::new();
    i.globals().declare("lines", corpus.as_value());
    i.register_native("wordToNumber", |_t, args| {
        let w = args.first()?.as_str()?;
        concurrent_generators::bigint::BigUint::from_str_radix(w, 36)
            .ok()
            .map(|n| Value::big(n.into()))
    });
    i.register_native("hashNumber", |_t, args| {
        let mag = match args.first()?.deref() {
            Value::Int(v) if v >= 0 => v as f64,
            Value::Big(b) => b.to_f64(),
            _ => return None,
        };
        Some(Value::Real(mag.sqrt()))
    });
    i.load(
        r#"
        def hashAll() {
            local line;
            every line := !lines do {
                suspend this::hashNumber(this::wordToNumber( ! line::split("\\s+") ));
            };
        }
        "#,
    )
    .unwrap();
    let mut c = 0.0;
    for v in i.eval("hashAll()").unwrap() {
        c += v.as_real().unwrap_or(0.0);
    }

    assert!(
        (a - b).abs() < a.abs() * 1e-9,
        "native vs embedded: {a} vs {b}"
    );
    assert!(
        (a - c).abs() < a.abs() * 1e-9,
        "native vs interpreted: {a} vs {c}"
    );
}

/// The transport batch is a pure performance knob: for every batch size —
/// including the item-at-a-time degenerate case and batches wider than
/// the queue — the pipelined word-count must produce a sum *byte-identical*
/// to the sequential fold of the same suite. Checked for both the Junicon
/// (embedded) and the native suite, at both corpus weights.
#[test]
fn batched_pipelines_are_bitwise_sequential_across_batch_sizes() {
    use concurrent_generators::wordcount::{embedded, native, Corpus, Weight};
    let corpora = [
        (Corpus::generate(60, 8, 2016), Weight::Light),
        (Corpus::generate(12, 6, 2017), Weight::Heavy),
    ];
    for (corpus, weight) in &corpora {
        let native_seq = native::sequential(corpus.lines(), *weight);
        let embedded_seq = embedded::sequential(corpus, *weight);
        for batch in [1, 2, 7, 64] {
            let n = native::pipeline_batched(corpus.lines(), *weight, 16, batch);
            assert_eq!(
                native_seq.to_bits(),
                n.to_bits(),
                "native pipeline diverged at batch {batch} ({weight:?})"
            );
            let e = embedded::pipeline_batched(corpus, *weight, 16, batch);
            assert_eq!(
                embedded_seq.to_bits(),
                e.to_bits(),
                "embedded pipeline diverged at batch {batch} ({weight:?})"
            );
        }
    }
}

/// Same sweep for the fan-in variants: source-order re-bucketing restores
/// the sequential reduction association, so the sum is byte-identical to
/// Sequential no matter how many sources raced or how wide the transport
/// batches were.
#[test]
fn fan_in_is_bitwise_sequential_across_batch_sizes() {
    use concurrent_generators::wordcount::{embedded, native, Corpus, Weight};
    let corpus = Corpus::generate(60, 8, 2018);
    let native_seq = native::sequential(corpus.lines(), Weight::Light);
    let embedded_seq = embedded::sequential(&corpus, Weight::Light);
    for sources in [1, 3] {
        for batch in [1, 2, 7, 64] {
            let n = native::fan_in(corpus.lines(), Weight::Light, sources, 16, batch);
            assert_eq!(
                native_seq.to_bits(),
                n.to_bits(),
                "native fan-in diverged at sources {sources} batch {batch}"
            );
            let e = embedded::fan_in(&corpus, Weight::Light, sources, 16, batch);
            assert_eq!(
                embedded_seq.to_bits(),
                e.to_bits(),
                "embedded fan-in diverged at sources {sources} batch {batch}"
            );
        }
    }
}

/// Stage fusion under the batched transport: the embedded variants now
/// fuse their stage plans ([`gde::comb::fuse`]) at construction, so this
/// sweep pins fused ≡ *unfused* across every producer/consumer schedule
/// the batch knob can produce — not just inline evaluation. The unfused
/// stage-per-node fold is the reference on the left of every assert.
#[test]
fn fused_pipelines_are_bitwise_unfused_across_batch_sizes() {
    use concurrent_generators::wordcount::{embedded, Corpus, Weight};
    let corpora = [
        (Corpus::generate(60, 8, 2019), Weight::Light),
        (Corpus::generate(12, 6, 2020), Weight::Heavy),
    ];
    for (corpus, weight) in &corpora {
        let unfused = embedded::sequential_unfused(corpus, *weight);
        assert_eq!(
            unfused.to_bits(),
            embedded::sequential(corpus, *weight).to_bits(),
            "fused sequential diverged from unfused ({weight:?})"
        );
        for batch in [1, 2, 7, 64] {
            let fused_piped = embedded::pipeline_batched(corpus, *weight, 16, batch);
            assert_eq!(
                unfused.to_bits(),
                fused_piped.to_bits(),
                "fused staged pipe diverged from unfused at batch {batch} ({weight:?})"
            );
        }
    }
}

/// Close-under-fire for staged (fused-at-construction) pipes: restarting
/// mid-consumption abandons a producer mid-chunk (its next `put` fails on
/// the closed queue), and the respawned producer must re-instantiate the
/// fused plan and replay the exact stream; dropping mid-consumption must
/// not hang. Swept across the same batch schedule as the other suites.
#[test]
fn staged_pipe_close_under_fire_replays_exactly() {
    use concurrent_generators::gde::comb::fuse::StagePlan;
    use concurrent_generators::gde::comb::to_range;
    use concurrent_generators::gde::{BoxGen, Gen, GenExt, Value};
    use concurrent_generators::pipes::Pipe;
    let plan = StagePlan::new()
        .map(|v| Value::from(v.as_int().unwrap_or(0) * 3))
        .filter(|v| v.as_int().unwrap_or(0) % 2 == 0)
        .flat(|v| Box::new(to_range(0, v.as_int().unwrap_or(0) % 5, 1)) as BoxGen)
        .filter_map(|v| Some(Value::from(v.as_int()? + 1)));
    let want: Vec<Option<i64>> = plan
        .instantiate(Box::new(to_range(1, 200, 1)))
        .collect_values()
        .iter()
        .map(|v| v.as_int())
        .collect();
    assert!(!want.is_empty());
    for batch in [1, 2, 7, 64] {
        // Small capacity: the producer is still in full flight when the
        // restart closes its queue out from under it.
        let mut p = Pipe::staged(|| Box::new(to_range(1, 200, 1)) as BoxGen, &plan, 8, batch);
        for _ in 0..5 {
            let _ = p.next_value();
        }
        Gen::restart(&mut p);
        let got: Vec<Option<i64>> = p.collect_values().iter().map(|v| v.as_int()).collect();
        assert_eq!(want, got, "staged pipe replay diverged at batch {batch}");
        // Drop mid-consumption: reaching the next iteration without a
        // hang is the assertion.
        let mut q = Pipe::staged(|| Box::new(to_range(1, 200, 1)) as BoxGen, &plan, 4, batch);
        let _ = q.next_value();
        drop(q);
    }
}

/// The generic `mapreduce::Pipeline` builder must likewise be
/// batch-invariant: identical value sequences at every transport batch.
#[test]
fn generic_pipeline_stage_is_batch_invariant() {
    use concurrent_generators::gde::comb::to_range;
    use concurrent_generators::gde::{ops, BoxGen};
    use concurrent_generators::mapreduce::Pipeline;
    let expect: Vec<i64> = (1..=50).map(|i| i * i + 1).collect();
    for batch in [1, 2, 7, 64] {
        let mut g = Pipeline::from(|| Box::new(to_range(1, 50, 1)) as BoxGen)
            .with_batch(batch)
            .stage(|v| ops::mul(v, v))
            .stage(|v| ops::add(v, &Value::from(1)))
            .build();
        let got: Vec<i64> = g
            .collect_values()
            .iter()
            .map(|v| v.as_int().unwrap())
            .collect();
        assert_eq!(got, expect, "generic pipeline diverged at batch {batch}");
    }
}
